#include "obs/json_value.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace nettag::obs {

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}
JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}
JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}
JsonValue JsonValue::make_array(Array v) {
  JsonValue j;
  j.type_ = Type::kArray;
  j.array_ = std::move(v);
  return j;
}
JsonValue JsonValue::make_object(Object v) {
  JsonValue j;
  j.type_ = Type::kObject;
  j.object_ = std::move(v);
  return j;
}

bool JsonValue::as_bool() const {
  NETTAG_EXPECTS(is_bool(), "JSON value is not a bool");
  return bool_;
}
double JsonValue::as_number() const {
  NETTAG_EXPECTS(is_number(), "JSON value is not a number");
  return number_;
}
std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}
const std::string& JsonValue::as_string() const {
  NETTAG_EXPECTS(is_string(), "JSON value is not a string");
  return string_;
}
const JsonValue::Array& JsonValue::as_array() const {
  NETTAG_EXPECTS(is_array(), "JSON value is not an array");
  return array_;
}
const JsonValue::Object& JsonValue::as_object() const {
  NETTAG_EXPECTS(is_object(), "JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  NETTAG_EXPECTS(v != nullptr,
                 "JSON object has no member \"" + std::string(key) + "\"");
  return *v;
}

std::string JsonValue::dump() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kNumber: return json_number(number_);
    case Type::kString: return json_string(string_);
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ",";
        out += array_[i].dump();
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ",";
        out += json_string(object_[i].first) + ":" + object_[i].second.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser state over the input text.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    expect(pos_ == text_.size(), "trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }
  void expect(bool cond, const char* what) const {
    if (!cond) fail(what);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    expect(!eof(), "unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void match_literal(std::string_view lit) {
    expect(text_.substr(pos_, lit.size()) == lit, "invalid literal");
    pos_ += lit.size();
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't': match_literal("true"); return JsonValue::make_bool(true);
      case 'f': match_literal("false"); return JsonValue::make_bool(false);
      case 'n': match_literal("null"); return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    take();  // '{'
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      take();
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      expect(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(take() == ':', "expected ':' after object key");
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      expect(c == ',', "expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    take();  // '['
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      take();
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      expect(c == ',', "expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(items));
  }

  /// Appends `cp` to `out` as UTF-8.
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect(take() == '"', "expected string");
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c != '\\') {
        expect(static_cast<unsigned char>(c) >= 0x20,
               "unescaped control character in string");
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            expect(!eof() && text_.substr(pos_, 2) == "\\u",
                   "unpaired UTF-16 surrogate");
            pos_ += 2;
            const unsigned lo = parse_hex4();
            expect(lo >= 0xDC00 && lo <= 0xDFFF, "invalid surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    expect(pos_ > start, "expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number \"" + token + "\"");
    }
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace nettag::obs
