// Noise-aware comparison and trend rendering over perf manifests.
//
// Wall-clock is noisy; a naive "candidate slower than baseline" gate either
// cries wolf or needs a tolerance so wide it misses real regressions.  The
// diff here is MAD-based: a case only counts as a regression (or an
// improvement) when the median moved BOTH beyond the relative threshold and
// beyond a noise band of k * max(MAD_base, MAD_cand) — repetitions with
// spread widen their own band, single-rep manifests degrade to the pure
// threshold.  `nettag-obs perf diff|trend|check` are thin CLI wrappers over
// these functions; directory walking stays in the CLI so this layer is pure.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json_value.hpp"
#include "obs/perf_manifest.hpp"

namespace nettag::obs {

struct PerfDiffOptions {
  /// Relative median movement below which a case is never flagged (0.10 =
  /// 10 % slower/faster).
  double threshold = 0.10;
  /// Noise-band multiplier: movement must also exceed
  /// mad_k * max(baseline MAD, candidate MAD).
  double mad_k = 4.0;
};

/// One case's verdict.
struct PerfCaseDelta {
  enum class Verdict { kOk, kImproved, kRegressed };

  std::string name;
  double base_median_ns = 0.0;
  double cand_median_ns = 0.0;
  double ratio = 1.0;     ///< cand / base (1.0 when base is 0)
  double noise_ns = 0.0;  ///< the band the movement had to clear
  Verdict verdict = Verdict::kOk;
};

struct PerfDiffResult {
  std::vector<PerfCaseDelta> cases;
  /// Cases present on only one side, environment mismatches, etc. —
  /// informational, never a failure by themselves.
  std::vector<std::string> notes;

  [[nodiscard]] bool has_regression() const noexcept;
};

/// Compares every case the two manifests share (by name).
[[nodiscard]] PerfDiffResult diff_perf_manifests(const PerfManifest& baseline,
                                                 const PerfManifest& candidate,
                                                 const PerfDiffOptions& options);

/// Human-readable diff table (one line per case + notes).
[[nodiscard]] std::string render_perf_diff(const PerfDiffResult& result);

/// Time-series view over a history of manifests: one row per manifest, one
/// column per case name (union, first-seen order), cell = median ns
/// (negative = case absent from that manifest).
struct PerfTrend {
  struct Row {
    std::string label;  ///< typically the manifest's file name
    std::string written_at;
    std::string git;
    std::vector<double> median_ns;  ///< parallel to case_names; -1 absent
  };

  std::vector<std::string> case_names;
  std::vector<Row> rows;
};

/// Builds the trend from (label, manifest) pairs, in the given order.
[[nodiscard]] PerfTrend build_perf_trend(
    const std::vector<std::pair<std::string, PerfManifest>>& history);

/// Long-form CSV: label,written_at,git,case,median_ns,min_ns? — one line per
/// (manifest, case) cell that exists.
[[nodiscard]] std::string render_perf_trend_csv(const PerfTrend& trend);

/// Markdown table: rows = manifests, columns = cases, cells = median ms.
[[nodiscard]] std::string render_perf_trend_markdown(const PerfTrend& trend);

/// Metrics digest of a parsed run manifest (the `nettag-obs summarize`
/// manifest mode): counter/gauge listings plus histogram p50/p90/p99
/// summaries recomputed from the bucket data, so pre-percentile manifests
/// summarize identically to fresh ones.
[[nodiscard]] std::string render_manifest_metrics(const JsonValue& manifest);

}  // namespace nettag::obs
