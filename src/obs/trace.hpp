// Event tracing for the CCM stack.
//
// Every layer that does interesting work — the session engine, the protocol
// drivers, the multi-reader scheduler — emits structured events through a
// TraceSink it receives as a (defaulted) parameter.  The default sink is a
// process-wide NullSink whose `enabled()` flag short-circuits `event()`
// before any field is serialized, so an untraced run pays one branch per
// event site and nothing else; in particular tracing never touches any RNG
// stream, which is what keeps traced and untraced runs bit-identical.
//
// Event vocabulary (see docs/OBSERVABILITY.md for the full schema):
//   session_begin / round / relay_tier / slot_batch / session_end
//                                                         — ccm::run_session
//   multi_begin / reader_window / multi_end               — ccm::multi_reader
//   estimate_frame / estimate_end                         — GMLE estimation
//   lof_end                                               — LoF estimation
//   detect_execution / detect_end                         — TRP detection
//   search_filter / search_frame / search_end             — tag search
//   idcollect_tree / idcollect_end                        — SICP / CICP
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace nettag::obs {

/// One key/value pair of a trace event.  Keys are string literals (never
/// owned); values are a small tagged union so sinks can serialize with the
/// right JSON type.
class Field {
 public:
  enum class Type { kInt, kUint, kDouble, kBool, kStr };

  constexpr Field(const char* key, int v) noexcept
      : key_(key), type_(Type::kInt), int_(v) {}
  constexpr Field(const char* key, long v) noexcept
      : key_(key), type_(Type::kInt), int_(v) {}
  constexpr Field(const char* key, long long v) noexcept
      : key_(key), type_(Type::kInt), int_(v) {}
  constexpr Field(const char* key, unsigned long v) noexcept
      : key_(key), type_(Type::kUint), uint_(v) {}
  constexpr Field(const char* key, unsigned long long v) noexcept
      : key_(key), type_(Type::kUint), uint_(v) {}
  constexpr Field(const char* key, double v) noexcept
      : key_(key), type_(Type::kDouble), double_(v) {}
  constexpr Field(const char* key, bool v) noexcept
      : key_(key), type_(Type::kBool), bool_(v) {}
  constexpr Field(const char* key, const char* v) noexcept
      : key_(key), type_(Type::kStr), str_(v) {}

  [[nodiscard]] const char* key() const noexcept { return key_; }
  [[nodiscard]] Type type() const noexcept { return type_; }

  /// The value rendered as a JSON literal (numbers bare, strings quoted).
  [[nodiscard]] std::string value_json() const;

 private:
  const char* key_;
  Type type_;
  union {
    std::int64_t int_;
    std::uint64_t uint_;
    double double_;
    bool bool_;
    const char* str_;
  };
};

/// One field already rendered to its JSON literal — the form RecordingSink
/// stores and the replay path consumes.
using RenderedField = std::pair<std::string, std::string>;

/// Destination of trace events.  Derived sinks implement `emit`; call sites
/// go through `event`, which skips the virtual dispatch when disabled.
///
/// Sinks also accept *replayed* events — events a RecordingSink captured on
/// a worker thread, re-emitted later in serial order.  Every sink in this
/// header renders a replayed event byte-identically to the original emit
/// (Field::value_json is applied exactly once, at recording time), which is
/// what lets the parallel trial path reproduce a serial trace stream.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Observation boundary: everything behind emit() is driver-side
  // rendering/buffering, short-circuited by `enabled_` on the hot path.
  // The markers keep the sink stack out of the kernel frontiers.
  // nettag-lint: cold-path
  void event(const char* kind, std::initializer_list<Field> fields) {
    if (enabled_) emit(kind, fields);
  }

  /// Re-emits an already-rendered event (see RecordingSink::Event).
  // nettag-lint: cold-path
  void replay(const std::string& kind,
              const std::vector<RenderedField>& fields) {
    if (enabled_) emit_rendered(kind, fields);
  }

 protected:
  explicit TraceSink(bool enabled) noexcept : enabled_(enabled) {}
  virtual void emit(const char* kind,
                    std::initializer_list<Field> fields) = 0;
  virtual void emit_rendered(const std::string& kind,
                             const std::vector<RenderedField>& fields) = 0;

 private:
  bool enabled_;
};

/// Discards everything; `enabled()` is false so event sites short-circuit.
class NullSink final : public TraceSink {
 public:
  NullSink() noexcept : TraceSink(false) {}

 private:
  void emit(const char* /*kind*/,
            std::initializer_list<Field> /*fields*/) override {}
  void emit_rendered(const std::string& /*kind*/,
                     const std::vector<RenderedField>& /*fields*/) override {}
};

/// The process-wide default sink (a shared NullSink).
[[nodiscard]] TraceSink& null_sink() noexcept;

/// Writes one JSON object per event, one per line:
///   {"seq":0,"event":"round","round":1,...}
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& out) noexcept
      : TraceSink(true), out_(out) {}

 private:
  void emit(const char* kind, std::initializer_list<Field> fields) override;
  void emit_rendered(const std::string& kind,
                     const std::vector<RenderedField>& fields) override;

  std::ostream& out_;
  std::uint64_t seq_ = 0;
};

/// Long-format CSV: header "seq,event,field,value", then one row per field
/// (events without fields still get one row with an empty field column).
class CsvSink final : public TraceSink {
 public:
  explicit CsvSink(std::ostream& out);

 private:
  void emit(const char* kind, std::initializer_list<Field> fields) override;
  void emit_rendered(const std::string& kind,
                     const std::vector<RenderedField>& fields) override;

  std::ostream& out_;
  std::uint64_t seq_ = 0;
};

/// Owns an optional file-backed sink.  An empty path yields the null sink
/// (no file is touched); a path ending in ".csv" yields a CsvSink; a path
/// ending in ".ntrace" yields the compact binary NettagBinarySink (see
/// obs/binary_trace.hpp); any other path yields a JsonlSink.  Throws via
/// NETTAG_EXPECTS when the file cannot be opened.  The object must outlive
/// every use of `sink()`.
class TraceFile {
 public:
  TraceFile() = default;
  explicit TraceFile(const std::string& path);

  [[nodiscard]] TraceSink& sink() noexcept {
    return sink_ ? *sink_ : null_sink();
  }
  [[nodiscard]] bool is_open() const noexcept { return sink_ != nullptr; }

 private:
  std::ofstream out_;
  std::unique_ptr<TraceSink> sink_;
};

/// Buffers events in memory — for tests and for post-run rendering.
class RecordingSink final : public TraceSink {
 public:
  struct Event {
    std::string kind;
    /// Field values pre-rendered as JSON literals, in emission order.
    std::vector<RenderedField> fields;

    /// JSON-literal value of `key`; empty string when absent.
    [[nodiscard]] std::string value(const std::string& key) const;
  };

  RecordingSink() noexcept : TraceSink(true) {}

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t count(const std::string& kind) const;
  void clear() noexcept { events_.clear(); }

 private:
  void emit(const char* kind, std::initializer_list<Field> fields) override;
  void emit_rendered(const std::string& kind,
                     const std::vector<RenderedField>& fields) override;

  std::vector<Event> events_;
};

/// Replays recorded events into `sink` in recorded order.  Replaying several
/// RecordingSinks in serial trial order reconstructs, byte for byte, the
/// stream a serial run would have written (sequence numbers are assigned by
/// the destination sink at replay time).
void replay_events(const std::vector<RecordingSink::Event>& events,
                   TraceSink& sink);

}  // namespace nettag::obs
