// Performance manifests: the timing-first inverse of run manifests.
//
// A run manifest (obs/manifest.hpp) is a *correctness* artifact — under
// SOURCE_DATE_EPOCH it redacts every nanosecond so byte-identity gates can
// compare runs across machines.  A perf manifest is the opposite: timing IS
// the payload and is never redacted or pinned.  One document captures one
// tool invocation's measured operating points — per-case wall time over
// warmup + N repetitions (min/median/MAD), derived throughput (tags/sec,
// slots/sec, sessions/sec), hot-path work-counter totals
// (common/work_counters.hpp, when compiled in) — plus the environment that
// makes a number comparable to another number: CPU model, core count,
// compiler, optimization flags, NETTAG_JOBS.
//
// Schema ("nettag.perf_manifest/1"):
//   {
//     "schema": "nettag.perf_manifest/1",
//     "tool": "perf_pinned",
//     "git": "<git describe at configure time>",
//     "written_at": "2026-08-08T12:00:00Z",
//     "environment": {"cpu":"...","cores":8,"compiler":"gcc ...",
//                     "flags":"-O3 ...","jobs":1,"os":"linux",
//                     "work_counters":false},
//     "cases": [
//       {"name":"fig4_sweep",
//        "config":{"tags":400,"trials":1,...},            // integers only
//        "warmup":1,"reps":5,
//        "wall_ns":{"min":...,"max":...,"median":...,"mad":...,"mean":...},
//        "samples_ns":[...],                               // the raw reps
//        "throughput":{"sessions_per_sec":...,...},
//        "work":{"rng_draws":...,...}}                     // one rep's tally
//     ]
//   }
//
// Producers: bench/perf_harness.hpp (repetition controller), bench/perf_pinned
// (the pinned operating points behind BENCH_<sha>.json), bench/micro_core
// (google-benchmark reporter).  Consumers: `nettag-obs perf diff|trend|check`
// via obs/perf_analysis.hpp.  Guard rail: these documents must NEVER enter
// bench/baselines/ — the byte-identity gate rejects the schema string
// (bench/check_bench_gate.cmake, tools/refresh_baselines.sh).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_value.hpp"

namespace nettag::obs {

inline constexpr const char* kPerfManifestSchema = "nettag.perf_manifest/1";

/// Repetition statistics over one case's timed samples.
struct PerfStats {
  int warmup = 0;  ///< untimed repetitions discarded before sampling
  int reps = 0;    ///< timed repetitions (== samples_ns.size())
  std::int64_t min_ns = 0;
  std::int64_t max_ns = 0;
  double median_ns = 0.0;
  double mad_ns = 0.0;  ///< median absolute deviation from the median
  double mean_ns = 0.0;
};

/// min/max/mean/median/MAD over `samples_ns` (order-insensitive).
[[nodiscard]] PerfStats compute_perf_stats(
    int warmup, const std::vector<std::int64_t>& samples_ns);

/// What makes two timings comparable (or not).
struct PerfEnvironment {
  std::string cpu = "unknown";       ///< CPU model string (/proc/cpuinfo)
  int cores = 0;                     ///< hardware_concurrency
  std::string compiler = "unknown";  ///< compiler id + version
  std::string flags;                 ///< optimization flags (baked at build)
  int jobs = 1;                      ///< NETTAG_JOBS worker threads
  std::string os = "unknown";
  bool work_counters = false;  ///< library built with NETTAG_WORK_COUNTERS
};

/// Probes the running machine/build; `jobs` is the caller's worker count.
[[nodiscard]] PerfEnvironment detect_perf_environment(int jobs);

/// One measured operating point.
struct PerfCase {
  std::string name;
  /// Configuration knobs that pin the operating point (integers only, so
  /// emit -> parse round-trips exactly): tags, trials, seed, frame sizes...
  std::vector<std::pair<std::string, std::int64_t>> config;
  PerfStats wall;
  std::vector<std::int64_t> samples_ns;  ///< per-rep wall time, in rep order
  /// Derived rates, e.g. {"tags_per_sec", 1.2e6}.
  std::vector<std::pair<std::string, double>> throughput;
  /// Work-counter totals for one repetition (empty when not counted).
  std::vector<std::pair<std::string, std::uint64_t>> work;
};

/// One complete perf-manifest document.
struct PerfManifest {
  std::string tool;
  std::string git;
  std::string written_at;
  PerfEnvironment environment;
  std::vector<PerfCase> cases;

  /// Case lookup by name; nullptr when absent.
  [[nodiscard]] const PerfCase* find_case(const std::string& name) const;
};

/// Single-line JSON rendering of the schema above (deterministic member
/// order; numbers in shortest round-trip form).
[[nodiscard]] std::string to_json(const PerfManifest& manifest);

/// True when `doc` is an object whose "schema" is kPerfManifestSchema.
[[nodiscard]] bool is_perf_manifest(const JsonValue& doc);

/// Parses a document produced by to_json (field-for-field inverse).  Throws
/// nettag::Error on a wrong schema or a malformed section.
[[nodiscard]] PerfManifest parse_perf_manifest(const JsonValue& doc);

/// Reads + parses a perf manifest file.  Throws nettag::Error on I/O or
/// parse failure.
[[nodiscard]] PerfManifest load_perf_manifest(const std::string& path);

/// Writes to_json() + newline to `path`; false on I/O failure.
bool write_perf_manifest(const PerfManifest& manifest,
                         const std::string& path);

}  // namespace nettag::obs
