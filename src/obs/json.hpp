// Minimal JSON formatting helpers shared by the observability exporters.
//
// The exporters only ever WRITE JSON (JSONL traces, registry dumps, run
// manifests), so a full parser would be dead weight; these two functions are
// the entire serialization substrate.  Doubles render via std::to_chars
// (shortest round-trip form), non-finite values as null per RFC 8259.
#pragma once

#include <string>

namespace nettag::obs {

/// `s` with JSON string escaping applied (quotes NOT added).
[[nodiscard]] std::string json_escape(const std::string& s);

/// `s` as a quoted JSON string literal.
[[nodiscard]] std::string json_string(const std::string& s);

/// `v` as a JSON number literal (shortest round-trip); "null" if non-finite.
[[nodiscard]] std::string json_number(double v);

}  // namespace nettag::obs
