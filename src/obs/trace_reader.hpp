// Offline trace parsing: JSONL event streams back into typed events.
//
// `JsonlSink` writes `{"seq":N,"event":"kind",...fields}` per line; this
// reader inverts that so tools (`nettag-obs summarize|check`), tests, and
// examples can analyze a finished run.  Lines are parsed strictly — a
// malformed line throws with its line number, because a trace that does not
// parse is itself a bug in the exporter.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_value.hpp"

namespace nettag::obs {

/// One parsed trace event: its sequence number, kind, and remaining fields
/// in emission order.
struct TraceEvent {
  std::uint64_t seq = 0;
  std::string kind;
  JsonValue::Object fields;

  /// Field lookup; nullptr when absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Integer field value; `fallback` when absent.
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const;
  /// String field value; empty when absent or not a string.
  [[nodiscard]] std::string str_or(std::string_view key) const;
};

/// Parses one JSONL trace line (must carry "seq" and "event").
[[nodiscard]] TraceEvent parse_trace_line(std::string_view line,
                                          std::size_t line_number = 0);

/// Reads every event from a JSONL stream (blank lines ignored).
[[nodiscard]] std::vector<TraceEvent> read_trace(std::istream& in);

/// Reads every event from a JSONL trace file; throws when the file cannot
/// be opened or a line is malformed.
[[nodiscard]] std::vector<TraceEvent> read_trace_file(const std::string& path);

}  // namespace nettag::obs
