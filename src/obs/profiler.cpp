#include "obs/profiler.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace nettag::obs {

std::int64_t Profiler::Node::self_ns() const noexcept {
  std::int64_t children_ns = 0;
  for (const auto& child : children) children_ns += child->total_ns;
  const std::int64_t self = total_ns - children_ns;
  return self > 0 ? self : 0;
}

Profiler& Profiler::instance() noexcept {
  static Profiler profiler;
  return profiler;
}

void Profiler::enable() {
  reset();
  enabled_ = true;
  epoch_ = std::chrono::steady_clock::now();
}

void Profiler::reset() {
  enabled_ = false;
  root_ = Node{};
  root_.name = "root";
  current_ = &root_;
  stack_.clear();
  events_.clear();
  dropped_events_ = 0;
}

std::int64_t Profiler::scope_begin(const char* name) {
  // Find-or-create the child named `name`.  Names are string literals but
  // may be distinct pointers across translation units, so compare contents;
  // fan-out per node is small (a handful of phases), so the scan is cheap.
  Node* child = nullptr;
  for (const auto& c : current_->children) {
    if (c->name == name || std::strcmp(c->name, name) == 0) {
      child = c.get();
      break;
    }
  }
  if (child == nullptr) {
    current_->children.push_back(std::make_unique<Node>());
    child = current_->children.back().get();
    child->name = name;
  }
  stack_.push_back(current_);
  current_ = child;
  return now_ns();
}

void Profiler::scope_end(std::int64_t start_ns) {
  if (stack_.empty()) return;  // enable() was called mid-span: drop it
  const std::int64_t dur = now_ns() - start_ns;
  ++current_->calls;
  current_->total_ns += dur;
  if (events_.size() < kMaxEvents) {
    events_.push_back({current_->name, start_ns, dur});
  } else {
    ++dropped_events_;
  }
  current_ = stack_.back();
  stack_.pop_back();
}

namespace {

void node_json(const Profiler::Node& node, std::ostringstream& os) {
  os << "{\"name\":" << json_string(node.name) << ",\"calls\":" << node.calls
     << ",\"total_ns\":" << node.total_ns
     << ",\"self_ns\":" << node.self_ns() << ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i) os << ",";
    node_json(*node.children[i], os);
  }
  os << "]}";
}

}  // namespace

std::string Profiler::to_json() const {
  std::ostringstream os;
  os << "{\"spans\":[";
  for (std::size_t i = 0; i < root_.children.size(); ++i) {
    if (i) os << ",";
    node_json(*root_.children[i], os);
  }
  os << "],\"dropped_events\":" << dropped_events_ << "}";
  return os.str();
}

std::string Profiler::to_chrome_trace() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const SpanEvent& e = events_[i];
    if (i) os << ",";
    // Complete ("X") events; timestamps are microseconds per the format.
    os << "{\"name\":" << json_string(e.name)
       << ",\"cat\":\"nettag\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":"
       << json_number(static_cast<double>(e.start_ns) / 1000.0)
       << ",\"dur\":" << json_number(static_cast<double>(e.dur_ns) / 1000.0)
       << "}";
  }
  os << "]}";
  return os.str();
}

bool Profiler::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_trace() << "\n";
  return static_cast<bool>(out);
}

}  // namespace nettag::obs
