#include "obs/binary_trace.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/json_value.hpp"

namespace nettag::obs {
namespace {

// Record tags (see the header comment for the layout).
constexpr std::uint8_t kTagIntern = 0x01;
constexpr std::uint8_t kTagEvent = 0x02;
constexpr std::uint8_t kTagCheckpoint = 0x03;
constexpr std::uint8_t kTagIndex = 0x04;

// Value tags inside an event record.
constexpr std::uint8_t kValInt = 0x00;
constexpr std::uint8_t kValUint = 0x01;
constexpr std::uint8_t kValDouble = 0x02;
constexpr std::uint8_t kValTrue = 0x03;
constexpr std::uint8_t kValFalse = 0x04;
constexpr std::uint8_t kValString = 0x05;
constexpr std::uint8_t kValRaw = 0x06;

void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

[[nodiscard]] std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void append_double(std::string& out, double d) {
  char bytes[sizeof(double)];
  std::memcpy(bytes, &d, sizeof(double));
  // The simulator only targets little-endian hosts; the format pins LE so a
  // big-endian port would byte-swap here.
  out.append(bytes, sizeof(double));
}

/// Cursor over a decoded record payload.
struct PayloadReader {
  const std::string& payload;
  std::size_t pos = 0;
  std::uint64_t file_offset;  ///< of the record, for error messages

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("ntrace record at byte " + std::to_string(file_offset) +
                ": " + msg);
  }

  [[nodiscard]] bool done() const noexcept { return pos >= payload.size(); }

  std::uint8_t byte() {
    if (pos >= payload.size()) fail("truncated payload");
    return static_cast<std::uint8_t>(payload[pos++]);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) fail("varint overflow");
      const std::uint64_t b = byte();
      v |= (b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::string bytes(std::size_t n) {
    if (payload.size() - pos < n) fail("truncated payload");
    std::string s = payload.substr(pos, n);
    pos += n;
    return s;
  }

  double f64() {
    if (payload.size() - pos < sizeof(double)) fail("truncated payload");
    double d = 0.0;
    std::memcpy(&d, payload.data() + pos, sizeof(double));
    pos += sizeof(double);
    return d;
  }
};

/// True when `literal` is exactly the canonical rendering of an int64.
bool exact_int(const std::string& literal, std::int64_t& out) {
  const char* first = literal.data();
  const char* last = first + literal.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last && std::to_string(out) == literal;
}

bool exact_uint(const std::string& literal, std::uint64_t& out) {
  const char* first = literal.data();
  const char* last = first + literal.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last && std::to_string(out) == literal;
}

bool exact_double(const std::string& literal, double& out) {
  const char* first = literal.data();
  const char* last = first + literal.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last && json_number(out) == literal;
}

/// Decodes a JSON string literal when (and only when) re-rendering it with
/// json_string reproduces the exact input bytes.
bool exact_string(const std::string& literal, std::string& out) {
  if (literal.size() < 2 || literal.front() != '"') return false;
  try {
    const JsonValue v = parse_json(literal);
    if (!v.is_string()) return false;
    out = v.as_string();
  } catch (const Error&) {
    return false;
  }
  return json_string(out) == literal;
}

}  // namespace

// ---------------------------------------------------------------------------
// JSONL line rendering / raw-preserving splitting
// ---------------------------------------------------------------------------

std::string render_jsonl_line(const BinaryEvent& e) {
  std::string line = "{\"seq\":" + std::to_string(e.seq) +
                     ",\"event\":" + json_string(e.kind);
  for (const auto& [key, literal] : e.fields) {
    line += ',';
    line += json_string(key);
    line += ':';
    line += literal;
  }
  line += '}';
  return line;
}

namespace {

/// Scanner that walks one JSONL object capturing each value's raw span.
struct LineScanner {
  std::string_view s;
  std::size_t pos = 0;
  std::size_t line_number;

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("trace line " + std::to_string(line_number) + ", byte " +
                std::to_string(pos) + ": " + msg);
  }

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }

  char expect(char c) {
    if (pos >= s.size() || s[pos] != c)
      fail(std::string("expected '") + c + "'");
    return s[pos++];
  }

  /// Consumes one string literal (quotes and escapes included).
  void consume_string() {
    expect('"');
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '\\') {
        if (pos >= s.size()) fail("unterminated escape");
        ++pos;
      } else if (c == '"') {
        return;
      }
    }
    fail("unterminated string");
  }

  /// Consumes one complete JSON value (any type, nesting allowed) and
  /// returns its raw span.
  std::string_view raw_value() {
    skip_ws();
    const std::size_t start = pos;
    if (pos >= s.size()) fail("missing value");
    const char c = s[pos];
    if (c == '"') {
      consume_string();
    } else if (c == '{' || c == '[') {
      int depth = 0;
      while (pos < s.size()) {
        const char d = s[pos];
        if (d == '"') {
          consume_string();
          continue;
        }
        ++pos;
        if (d == '{' || d == '[') ++depth;
        if (d == '}' || d == ']') {
          --depth;
          if (depth == 0) break;
        }
      }
      if (depth != 0) fail("unterminated object/array");
    } else {
      while (pos < s.size() && s[pos] != ',' && s[pos] != '}' &&
             s[pos] != ' ' && s[pos] != '\t')
        ++pos;
      if (pos == start) fail("missing value");
    }
    return s.substr(start, pos - start);
  }
};

}  // namespace

BinaryEvent split_jsonl_line(std::string_view line, std::size_t line_number) {
  LineScanner sc{line, 0, line_number};
  BinaryEvent event;
  bool have_seq = false;
  bool have_kind = false;

  sc.skip_ws();
  sc.expect('{');
  sc.skip_ws();
  if (sc.pos < line.size() && line[sc.pos] == '}') {
    sc.fail("trace event lacks seq/event keys");
  }
  for (;;) {
    sc.skip_ws();
    const std::size_t key_start = sc.pos;
    sc.consume_string();
    const std::string raw_key(
        line.substr(key_start, sc.pos - key_start));
    std::string key;
    if (!exact_string(raw_key, key)) {
      // Non-canonical key escapes: decode leniently via the JSON parser.
      const JsonValue v = parse_json(raw_key);
      key = v.as_string();
    }
    sc.skip_ws();
    sc.expect(':');
    const std::string_view raw = sc.raw_value();
    if (key == "seq" && !have_seq) {
      std::uint64_t seq = 0;
      const std::string raw_str(raw);
      if (!exact_uint(raw_str, seq))
        sc.fail("seq is not an unsigned integer");
      event.seq = seq;
      have_seq = true;
    } else if (key == "event" && !have_kind) {
      std::string kind;
      const std::string raw_str(raw);
      if (!exact_string(raw_str, kind) || kind.empty())
        sc.fail("event kind is not a plain string");
      event.kind = std::move(kind);
      have_kind = true;
    } else {
      event.fields.emplace_back(std::move(key), std::string(raw));
    }
    sc.skip_ws();
    if (sc.pos < line.size() && line[sc.pos] == ',') {
      ++sc.pos;
      continue;
    }
    sc.expect('}');
    break;
  }
  sc.skip_ws();
  if (sc.pos != line.size()) sc.fail("trailing bytes after object");
  if (!have_seq || !have_kind) sc.fail("trace event lacks seq/event keys");
  return event;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out,
                                     std::uint64_t checkpoint_interval)
    : out_(out),
      checkpoint_interval_(checkpoint_interval == 0 ? 1
                                                    : checkpoint_interval) {
  char header[8] = {};
  std::memcpy(header, kNtraceMagic, 4);
  header[4] = static_cast<char>(kNtraceVersion);
  // header[5..7]: flags + reserved, zero.
  put_raw(header, sizeof(header));
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; a failed footer leaves a stream-readable
    // (index-less) file behind, which readers handle.
  }
}

void BinaryTraceWriter::put_raw(const char* data, std::size_t n) {
  out_.write(data, static_cast<std::streamsize>(n));
  offset_ += n;
}

void BinaryTraceWriter::put_record(std::uint8_t tag,
                                   const std::string& payload) {
  std::string head;
  head.push_back(static_cast<char>(tag));
  append_varint(head, payload.size());
  put_raw(head.data(), head.size());
  put_raw(payload.data(), payload.size());
}

std::uint64_t BinaryTraceWriter::intern(const std::string& s) {
  const auto it = std::lower_bound(
      by_name_.begin(), by_name_.end(), s,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != by_name_.end() && it->first == s) return it->second;
  const std::uint64_t id = strings_.size();
  strings_.push_back(s);
  by_name_.insert(it, {s, id});
  std::string payload;
  append_varint(payload, id);
  payload += s;
  put_record(kTagIntern, payload);
  return id;
}

void BinaryTraceWriter::write_rendered(
    std::uint64_t seq, const std::string& kind,
    const std::vector<RenderedField>& fields) {
  NETTAG_EXPECTS(!finished_, "ntrace writer already finished");
  // Build the event payload first: interning may flush intern records, and
  // the checkpoint below must point at the *event* record's own offset.
  std::string payload;
  append_varint(payload, seq);
  append_varint(payload, intern(kind));
  append_varint(payload, fields.size());
  for (const auto& [key, literal] : fields) {
    append_varint(payload, intern(key));
    std::int64_t i = 0;
    std::uint64_t u = 0;
    double d = 0.0;
    std::string str;
    if (literal == "true") {
      payload.push_back(static_cast<char>(kValTrue));
    } else if (literal == "false") {
      payload.push_back(static_cast<char>(kValFalse));
    } else if (exact_int(literal, i)) {
      payload.push_back(static_cast<char>(kValInt));
      append_varint(payload, zigzag(i));
    } else if (exact_uint(literal, u)) {
      payload.push_back(static_cast<char>(kValUint));
      append_varint(payload, u);
    } else if (exact_double(literal, d)) {
      payload.push_back(static_cast<char>(kValDouble));
      append_double(payload, d);
    } else if (exact_string(literal, str)) {
      payload.push_back(static_cast<char>(kValString));
      append_varint(payload, intern(str));
    } else {
      // Anything else (non-canonical numbers, nested values, null) is kept
      // as its verbatim literal so the JSONL side still round-trips.
      payload.push_back(static_cast<char>(kValRaw));
      append_varint(payload, intern(literal));
    }
  }

  if (events_ % checkpoint_interval_ == 0) {
    std::string cp;
    append_varint(cp, seq);
    append_varint(cp, strings_.size());
    put_record(kTagCheckpoint, cp);
    checkpoints_.emplace_back(seq, offset_);
  }
  put_record(kTagEvent, payload);
  ++events_;
}

void BinaryTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  std::string payload;
  append_varint(payload, strings_.size());
  for (const std::string& s : strings_) {
    append_varint(payload, s.size());
    payload += s;
  }
  append_varint(payload, checkpoints_.size());
  for (const auto& [seq, offset] : checkpoints_) {
    append_varint(payload, seq);
    append_varint(payload, offset);
  }
  const std::uint64_t index_offset = offset_;
  put_record(kTagIndex, payload);
  char trailer[12];
  for (int i = 0; i < 8; ++i)
    trailer[i] = static_cast<char>((index_offset >> (8 * i)) & 0xFF);
  std::memcpy(trailer + 8, kNtraceIndexMagic, 4);
  put_raw(trailer, sizeof(trailer));
  out_.flush();
  NETTAG_EXPECTS(out_.good(), "ntrace write failed");
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void reader_fail(std::uint64_t offset, const std::string& msg) {
  throw Error("ntrace at byte " + std::to_string(offset) + ": " + msg);
}

}  // namespace

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(in) {
  char header[8] = {};
  in_.read(header, sizeof(header));
  if (in_.gcount() != sizeof(header) ||
      std::memcmp(header, kNtraceMagic, 4) != 0)
    reader_fail(0, "not an ntrace file (bad magic)");
  const auto version = static_cast<std::uint8_t>(header[4]);
  if (version != kNtraceVersion)
    reader_fail(4, "unsupported ntrace version " + std::to_string(version) +
                       " (reader knows version " +
                       std::to_string(kNtraceVersion) + ")");
  offset_ = sizeof(header);
  first_record_offset_ = offset_;
}

const std::string& BinaryTraceReader::interned(std::uint64_t id,
                                               std::uint64_t offset) const {
  if (id >= strings_.size())
    reader_fail(offset, "intern id " + std::to_string(id) +
                            " out of range (table has " +
                            std::to_string(strings_.size()) + ")");
  return strings_[id];
}

bool BinaryTraceReader::next(BinaryEvent& out) {
  for (;;) {
    if (done_) return false;
    const std::uint64_t record_offset = offset_;
    const int tag_char = in_.get();
    if (tag_char == std::char_traits<char>::eof()) {
      done_ = true;  // clean EOF between records (e.g. index-less file)
      return false;
    }
    ++offset_;
    const auto tag = static_cast<std::uint8_t>(tag_char);

    // Length varint, streamed byte by byte.
    std::uint64_t len = 0;
    int shift = 0;
    for (;;) {
      const int b = in_.get();
      if (b == std::char_traits<char>::eof())
        reader_fail(record_offset, "truncated record header");
      ++offset_;
      len |= (static_cast<std::uint64_t>(b) & 0x7F) << shift;
      if ((static_cast<std::uint64_t>(b) & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) reader_fail(record_offset, "varint overflow");
    }

    std::string payload(len, '\0');
    in_.read(payload.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::uint64_t>(in_.gcount()) != len)
      reader_fail(record_offset, "truncated record payload (wanted " +
                                     std::to_string(len) + " bytes)");
    offset_ += len;

    PayloadReader pr{payload, 0, record_offset};
    switch (tag) {
      case kTagIntern: {
        const std::uint64_t id = pr.varint();
        std::string s = payload.substr(pr.pos);
        if (id == strings_.size()) {
          strings_.push_back(std::move(s));
        } else if (id < strings_.size()) {
          if (strings_[id] != s)
            pr.fail("intern id " + std::to_string(id) +
                    " redefined with different bytes");
        } else {
          pr.fail("intern id " + std::to_string(id) + " skips ids");
        }
        continue;
      }
      case kTagCheckpoint:
        continue;  // sync marker only
      case kTagIndex:
        done_ = true;  // footer: end of the event stream
        return false;
      case kTagEvent: {
        out.seq = pr.varint();
        out.kind = interned(pr.varint(), record_offset);
        const std::uint64_t count = pr.varint();
        out.fields.clear();
        out.fields.reserve(count);
        for (std::uint64_t f = 0; f < count; ++f) {
          const std::string& key = interned(pr.varint(), record_offset);
          const std::uint8_t vt = pr.byte();
          std::string literal;
          switch (vt) {
            case kValInt:
              literal = std::to_string(unzigzag(pr.varint()));
              break;
            case kValUint:
              literal = std::to_string(pr.varint());
              break;
            case kValDouble:
              literal = json_number(pr.f64());
              break;
            case kValTrue:
              literal = "true";
              break;
            case kValFalse:
              literal = "false";
              break;
            case kValString:
              literal = json_string(interned(pr.varint(), record_offset));
              break;
            case kValRaw:
              literal = interned(pr.varint(), record_offset);
              break;
            default:
              pr.fail("unknown value tag " + std::to_string(vt));
          }
          out.fields.emplace_back(key, std::move(literal));
        }
        if (!pr.done()) pr.fail("trailing bytes in event record");
        return true;
      }
      default:
        continue;  // unknown record type within a known version: skip
    }
  }
}

bool BinaryTraceReader::load_index() {
  const std::istream::pos_type saved = in_.tellg();
  in_.clear();
  in_.seekg(0, std::ios::end);
  const std::istream::pos_type end = in_.tellg();
  if (end < static_cast<std::istream::off_type>(first_record_offset_ + 12)) {
    in_.clear();
    in_.seekg(saved);
    return false;
  }
  in_.seekg(-12, std::ios::end);
  char trailer[12] = {};
  in_.read(trailer, sizeof(trailer));
  if (in_.gcount() != sizeof(trailer) ||
      std::memcmp(trailer + 8, kNtraceIndexMagic, 4) != 0) {
    in_.clear();
    in_.seekg(saved);
    return false;
  }
  std::uint64_t index_offset = 0;
  for (int i = 0; i < 8; ++i)
    index_offset |= static_cast<std::uint64_t>(
                        static_cast<std::uint8_t>(trailer[i]))
                    << (8 * i);
  if (index_offset < first_record_offset_ ||
      index_offset >= static_cast<std::uint64_t>(end)) {
    in_.clear();
    in_.seekg(saved);
    return false;
  }

  in_.clear();
  in_.seekg(static_cast<std::istream::off_type>(index_offset));
  const int tag = in_.get();
  if (tag != kTagIndex) reader_fail(index_offset, "trailer points past index");
  std::uint64_t len = 0;
  int shift = 0;
  for (;;) {
    const int b = in_.get();
    if (b == std::char_traits<char>::eof())
      reader_fail(index_offset, "truncated index record");
    len |= (static_cast<std::uint64_t>(b) & 0x7F) << shift;
    if ((static_cast<std::uint64_t>(b) & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) reader_fail(index_offset, "varint overflow");
  }
  std::string payload(len, '\0');
  in_.read(payload.data(), static_cast<std::streamsize>(len));
  if (static_cast<std::uint64_t>(in_.gcount()) != len)
    reader_fail(index_offset, "truncated index payload");

  PayloadReader pr{payload, 0, index_offset};
  BinaryTraceIndex index;
  const std::uint64_t string_count = pr.varint();
  index.strings.reserve(string_count);
  for (std::uint64_t i = 0; i < string_count; ++i) {
    const std::uint64_t n = pr.varint();
    index.strings.push_back(pr.bytes(n));
  }
  const std::uint64_t checkpoint_count = pr.varint();
  index.checkpoints.reserve(checkpoint_count);
  for (std::uint64_t i = 0; i < checkpoint_count; ++i) {
    const std::uint64_t seq = pr.varint();
    const std::uint64_t off = pr.varint();
    index.checkpoints.emplace_back(seq, off);
  }
  if (!pr.done()) pr.fail("trailing bytes in index record");

  index_ = std::move(index);
  strings_ = index_.strings;
  indexed_ = true;
  done_ = false;
  in_.clear();
  in_.seekg(static_cast<std::istream::off_type>(first_record_offset_));
  offset_ = first_record_offset_;
  return true;
}

void BinaryTraceReader::seek(std::uint64_t seq) {
  NETTAG_EXPECTS(indexed_, "ntrace seek requires a loaded index");
  std::uint64_t target_offset = first_record_offset_;
  for (const auto& [cp_seq, cp_off] : index_.checkpoints) {
    if (cp_seq > seq) break;
    target_offset = cp_off;
  }
  in_.clear();
  in_.seekg(static_cast<std::istream::off_type>(target_offset));
  offset_ = target_offset;
  done_ = false;
}

// ---------------------------------------------------------------------------
// Sink and converters
// ---------------------------------------------------------------------------

NettagBinarySink::NettagBinarySink(std::ostream& out)
    : TraceSink(true), writer_(out) {}

void NettagBinarySink::emit(const char* kind,
                            std::initializer_list<Field> fields) {
  // Render once, exactly like RecordingSink, so a live event and its
  // recorded-and-replayed twin encode to identical bytes.
  std::vector<RenderedField> rendered;
  rendered.reserve(fields.size());
  for (const Field& f : fields) rendered.emplace_back(f.key(), f.value_json());
  writer_.write_rendered(seq_++, kind, rendered);
}

void NettagBinarySink::emit_rendered(const std::string& kind,
                                     const std::vector<RenderedField>& fields) {
  writer_.write_rendered(seq_++, kind, fields);
}

bool has_ntrace_extension(const std::string& path) {
  constexpr const char* kExt = ".ntrace";
  constexpr std::size_t kExtLen = 7;
  return path.size() >= kExtLen &&
         path.compare(path.size() - kExtLen, kExtLen, kExt) == 0;
}

std::uint64_t convert_jsonl_to_binary(std::istream& jsonl, std::ostream& out) {
  BinaryTraceWriter writer(out);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(jsonl, line)) {
    ++line_number;
    if (line.empty()) continue;
    const BinaryEvent event = split_jsonl_line(line, line_number);
    writer.write_rendered(event.seq, event.kind, event.fields);
  }
  writer.finish();
  return writer.events_written();
}

std::uint64_t convert_binary_to_jsonl(std::istream& in, std::ostream& jsonl) {
  BinaryTraceReader reader(in);
  BinaryEvent event;
  std::uint64_t events = 0;
  while (reader.next(event)) {
    jsonl << render_jsonl_line(event) << '\n';
    ++events;
  }
  return events;
}

}  // namespace nettag::obs
