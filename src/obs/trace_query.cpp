#include "obs/trace_query.hpp"

#include <cctype>
#include <charconv>

#include "obs/json_value.hpp"
#include "obs/trace_reader.hpp"

namespace nettag::obs {
namespace {

// ---------------------------------------------------------------------------
// Lexer — same shape as the lint tokenizer (tools/lint/lexer.cpp): a flat
// token vector with maximal-munch punctuators, just over a far smaller
// language and with byte spans instead of line numbers.
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,   // field name, has, true, false
  kNumber,  // decimal literal (text kept verbatim for the error span)
  kString,  // decoded contents
  kPunct,   // == != <= >= < > && || ! ( )
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t pos;
  std::size_t len;
};

/// Multi-character punctuators, longest first so maximal munch is a linear
/// prefix test.
const char* const kPuncts[] = {"==", "!=", "<=", ">=", "&&", "||",
                               "<",  ">",  "!",  "(",  ")"};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.';
}
bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

std::vector<Token> lex_query(std::string_view expr) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  while (pos < expr.size()) {
    const char c = expr[pos];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++pos;
      continue;
    }
    const std::size_t start = pos;
    if (c == '"') {
      ++pos;
      std::string contents;
      bool closed = false;
      while (pos < expr.size()) {
        const char d = expr[pos++];
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\') {
          if (pos >= expr.size())
            throw QueryError("unterminated escape in string literal",
                             pos - 1, 1);
          const char e = expr[pos++];
          switch (e) {
            case '"': contents.push_back('"'); break;
            case '\\': contents.push_back('\\'); break;
            case 'n': contents.push_back('\n'); break;
            case 't': contents.push_back('\t'); break;
            case 'r': contents.push_back('\r'); break;
            default:
              throw QueryError(std::string("unknown escape '\\") + e + "'",
                               pos - 2, 2);
          }
          continue;
        }
        contents.push_back(d);
      }
      if (!closed)
        throw QueryError("unterminated string literal", start, pos - start);
      tokens.push_back({TokKind::kString, std::move(contents), start,
                        pos - start});
      continue;
    }
    if (is_digit(c) || ((c == '-' || c == '+') && pos + 1 < expr.size() &&
                        is_digit(expr[pos + 1]))) {
      ++pos;
      while (pos < expr.size() &&
             (is_digit(expr[pos]) || expr[pos] == '.' || expr[pos] == 'e' ||
              expr[pos] == 'E' ||
              ((expr[pos] == '-' || expr[pos] == '+') &&
               (expr[pos - 1] == 'e' || expr[pos - 1] == 'E'))))
        ++pos;
      tokens.push_back({TokKind::kNumber,
                        std::string(expr.substr(start, pos - start)), start,
                        pos - start});
      continue;
    }
    if (is_ident_start(c)) {
      ++pos;
      while (pos < expr.size() && is_ident_char(expr[pos])) ++pos;
      tokens.push_back({TokKind::kIdent,
                        std::string(expr.substr(start, pos - start)), start,
                        pos - start});
      continue;
    }
    bool matched = false;
    for (const char* op : kPuncts) {
      const std::size_t n = std::string::traits_type::length(op);
      if (expr.compare(pos, n, op) == 0) {
        tokens.push_back({TokKind::kPunct, op, pos, n});
        pos += n;
        matched = true;
        break;
      }
    }
    if (!matched)
      throw QueryError(std::string("unexpected character '") + c + "'", pos,
                       1);
  }
  tokens.push_back({TokKind::kEnd, "", expr.size(), 1});
  return tokens;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parser — recursive descent straight into the postfix program.
// ---------------------------------------------------------------------------

class QueryParser {
 public:
  explicit QueryParser(std::string_view expr) : tokens_(lex_query(expr)) {}

  CompiledQuery parse() {
    CompiledQuery query;
    or_expr(query.code_);
    const Token& t = peek();
    if (t.kind != TokKind::kEnd)
      throw QueryError("unexpected trailing input", t.pos, t.len);
    return query;
  }

 private:
  using Op = CompiledQuery::Op;
  using Instr = CompiledQuery::Instr;
  using Code = std::vector<Instr>;

  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }

  bool accept_punct(const char* text) {
    if (peek().kind == TokKind::kPunct && peek().text == text) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_punct(const char* text, const char* what) {
    const Token& t = peek();
    if (t.kind != TokKind::kPunct || t.text != text)
      throw QueryError(std::string("expected ") + what, t.pos, t.len);
    ++pos_;
  }

  void or_expr(Code& code) {
    and_expr(code);
    while (accept_punct("||")) {
      and_expr(code);
      code.push_back({Op::kOr});
    }
  }

  void and_expr(Code& code) {
    unary(code);
    while (accept_punct("&&")) {
      unary(code);
      code.push_back({Op::kAnd});
    }
  }

  void unary(Code& code) {
    if (accept_punct("!")) {
      unary(code);
      code.push_back({Op::kNot});
      return;
    }
    primary(code);
  }

  void primary(Code& code) {
    if (accept_punct("(")) {
      or_expr(code);
      expect_punct(")", "')'");
      return;
    }
    if (peek().kind == TokKind::kIdent && peek().text == "has") {
      advance();
      expect_punct("(", "'(' after has");
      const Token& field = peek();
      if (field.kind != TokKind::kIdent)
        throw QueryError("expected a field name inside has()", field.pos,
                         field.len);
      advance();
      expect_punct(")", "')'");
      Instr has{Op::kHas};
      has.text = field.text;
      code.push_back(std::move(has));
      return;
    }
    operand(code);
    static const struct { const char* text; Op op; } kCmps[] = {
        {"==", Op::kEq}, {"!=", Op::kNe}, {"<=", Op::kLe},
        {">=", Op::kGe}, {"<", Op::kLt},  {">", Op::kGt},
    };
    for (const auto& cmp : kCmps) {
      if (accept_punct(cmp.text)) {
        operand(code);
        code.push_back({cmp.op});
        return;
      }
    }
  }

  void operand(Code& code) {
    const Token& t = peek();
    switch (t.kind) {
      case TokKind::kIdent: {
        advance();
        Instr instr{Op::kPushField};
        if (t.text == "true") {
          instr.op = Op::kPushBool;
          instr.flag = true;
        } else if (t.text == "false") {
          instr.op = Op::kPushBool;
          instr.flag = false;
        } else if (t.text == "seq") {
          instr.op = Op::kPushSeq;
        } else if (t.text == "event") {
          instr.op = Op::kPushKind;
        } else {
          instr.text = t.text;
        }
        code.push_back(std::move(instr));
        return;
      }
      case TokKind::kNumber: {
        advance();
        Instr instr{Op::kPushNum};
        const char* first = t.text.data();
        const char* last = first + t.text.size();
        const auto [ptr, ec] = std::from_chars(first, last, instr.num);
        if (ec != std::errc() || ptr != last)
          throw QueryError("malformed number literal", t.pos, t.len);
        code.push_back(std::move(instr));
        return;
      }
      case TokKind::kString: {
        advance();
        Instr instr{Op::kPushStr};
        instr.text = t.text;
        code.push_back(std::move(instr));
        return;
      }
      case TokKind::kPunct:
        throw QueryError("expected a field name or literal", t.pos, t.len);
      case TokKind::kEnd:
        throw QueryError("unexpected end of expression", t.pos, t.len);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

CompiledQuery CompiledQuery::compile(std::string_view expr) {
  return QueryParser(expr).parse();
}

// ---------------------------------------------------------------------------
// Evaluation — a small stack machine over a tagged value.
// ---------------------------------------------------------------------------

namespace {

/// A runtime value on the evaluation stack.  kMissing marks an absent field
/// (and any JSON type the language has no literals for, e.g. null), which
/// every comparison rejects.
struct Value {
  enum class Type { kMissing, kBool, kNum, kStr };
  Type type = Type::kMissing;
  bool b = false;
  double num = 0.0;
  const std::string* str = nullptr;  // borrowed from event or program

  [[nodiscard]] bool truthy() const {
    switch (type) {
      case Type::kMissing: return false;
      case Type::kBool: return b;
      case Type::kNum: return num != 0.0;
      case Type::kStr: return str != nullptr && !str->empty();
    }
    return false;
  }
};

Value from_json(const JsonValue& v) {
  Value out;
  if (v.is_bool()) {
    out.type = Value::Type::kBool;
    out.b = v.as_bool();
  } else if (v.is_number()) {
    out.type = Value::Type::kNum;
    out.num = v.as_number();
  } else if (v.is_string()) {
    out.type = Value::Type::kStr;
    out.str = &v.as_string();
  }
  return out;  // null / array / object stay kMissing
}

/// -1 less, 0 equal, +1 greater, +2 incomparable (mixed or missing).
int compare(const Value& a, const Value& b) {
  if (a.type != b.type) return 2;
  switch (a.type) {
    case Value::Type::kMissing:
      return 2;
    case Value::Type::kBool:
      return a.b == b.b ? 0 : 2;  // no ordering on bools
    case Value::Type::kNum:
      if (a.num < b.num) return -1;
      if (a.num > b.num) return 1;
      if (a.num == b.num) return 0;
      return 2;  // NaN
    case Value::Type::kStr: {
      const int c = a.str->compare(*b.str);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 2;
}

}  // namespace

bool CompiledQuery::matches(const TraceEvent& event) const {
  // The stack depth is bounded by the program size; queries are tiny, so a
  // small inline buffer would be overkill.
  std::vector<Value> stack;
  stack.reserve(8);
  const auto pop = [&stack]() {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };
  const auto push_bool = [&stack](bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.b = b;
    stack.push_back(v);
  };

  for (const Instr& instr : code_) {
    switch (instr.op) {
      case Op::kPushField: {
        const JsonValue* v = event.find(instr.text);
        stack.push_back(v != nullptr ? from_json(*v) : Value{});
        break;
      }
      case Op::kPushSeq: {
        Value v;
        v.type = Value::Type::kNum;
        v.num = static_cast<double>(event.seq);
        stack.push_back(v);
        break;
      }
      case Op::kPushKind: {
        Value v;
        v.type = Value::Type::kStr;
        v.str = &event.kind;
        stack.push_back(v);
        break;
      }
      case Op::kPushNum: {
        Value v;
        v.type = Value::Type::kNum;
        v.num = instr.num;
        stack.push_back(v);
        break;
      }
      case Op::kPushStr: {
        Value v;
        v.type = Value::Type::kStr;
        v.str = &instr.text;
        stack.push_back(v);
        break;
      }
      case Op::kPushBool:
        push_bool(instr.flag);
        break;
      case Op::kHas:
        // The pseudo-fields exist on every event by construction.
        push_bool(instr.text == "seq" || instr.text == "event" ||
                  event.find(instr.text) != nullptr);
        break;
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        const Value rhs = pop();
        const Value lhs = pop();
        const bool missing = lhs.type == Value::Type::kMissing ||
                             rhs.type == Value::Type::kMissing;
        // Bools admit equality but no ordering — `busy<=true` is false.
        const bool unordered = lhs.type == Value::Type::kBool ||
                               rhs.type == Value::Type::kBool;
        const int c = compare(lhs, rhs);
        bool result = false;
        switch (instr.op) {
          case Op::kEq: result = c == 0; break;
          // Mixed present types are unequal; a missing operand fails every
          // comparison including != (probe presence with has()).
          case Op::kNe: result = !missing && c != 0; break;
          case Op::kLt: result = c == -1; break;
          case Op::kLe: result = !unordered && (c == -1 || c == 0); break;
          case Op::kGt: result = c == 1; break;
          case Op::kGe: result = !unordered && (c == 1 || c == 0); break;
          default: break;
        }
        push_bool(result);
        break;
      }
      case Op::kAnd: {
        const Value rhs = pop();
        const Value lhs = pop();
        push_bool(lhs.truthy() && rhs.truthy());
        break;
      }
      case Op::kOr: {
        const Value rhs = pop();
        const Value lhs = pop();
        push_bool(lhs.truthy() || rhs.truthy());
        break;
      }
      case Op::kNot:
        push_bool(!pop().truthy());
        break;
    }
  }
  return stack.size() == 1 && stack.back().truthy();
}

std::string render_query_error(std::string_view expr,
                               const QueryError& error) {
  std::string out = "error: ";
  out += error.what();
  out += "\n  ";
  out.append(expr.data(), expr.size());
  out += "\n  ";
  const std::size_t pos = error.pos > expr.size() ? expr.size() : error.pos;
  out.append(pos, ' ');
  std::size_t len = error.len == 0 ? 1 : error.len;
  if (pos + len > expr.size() + 1) len = expr.size() + 1 - pos;
  out.append(len, '^');
  out += '\n';
  return out;
}

}  // namespace nettag::obs
