// Compact binary trace format (".ntrace") for GB-scale event streams.
//
// JSONL traces are self-describing but pay for it twice per event: every key
// is spelled out and every value is decimal text.  At 10^6-tag sessions the
// same vocabulary repeats millions of times, so the binary format interns
// every string (event kinds, field keys, string values) once and encodes the
// rest as tagged varints.  The encoding is *lossless with respect to the
// JSONL rendering*: every record carries enough type information to
// regenerate the exact bytes `JsonlSink` would have written, so
// `jsonl -> ntrace -> jsonl` round-trips byte-identically for traces the
// repo's sinks produced (non-canonical hand-written JSON falls back to a
// raw-literal record and still round-trips verbatim).
//
// Layout (all integers little-endian; varint = unsigned LEB128):
//
//   file    := header record* trailer?
//   header  := magic "NTRC" | u8 version (=1) | u8 flags (=0) | u16 reserved
//   record  := u8 tag | varint payload_len | payload
//
//   tag 0x01 intern      varint id, utf-8 bytes — ids are consecutive from 0
//                        in first-use order; a reader that already knows `id`
//                        (from the footer index) may skip the record.
//   tag 0x02 event       varint seq | varint kind_id | varint field_count |
//                        fields: varint key_id, u8 value_tag, payload
//   tag 0x03 checkpoint  varint next_seq, varint intern_count — sync marker,
//                        one per kCheckpointInterval events.
//   tag 0x04 index       the seekable footer: varint intern_count, strings
//                        (varint len + bytes, id order — a snapshot of the
//                        full table), then varint checkpoint_count and per
//                        checkpoint (varint seq, varint byte_offset of that
//                        event record).  Written once, at close.
//
//   trailer := u64 byte offset of the index record | magic "NTIX"
//
//   value_tag 0x00 int     zigzag varint        renders via std::to_string
//             0x01 uint    varint               renders via std::to_string
//             0x02 double  8-byte IEEE-754 LE   renders via obs::json_number
//             0x03 true    (empty)
//             0x04 false   (empty)
//             0x05 string  varint intern id     renders via obs::json_string
//             0x06 raw     varint intern id     verbatim JSON literal text
//
// A truncated file (crashed run) loses the trailer and any partial final
// record but every complete record before it still decodes: readers treat a
// clean EOF or a trailing index record as end-of-stream and throw
// nettag::Error (with a byte offset) on anything malformed.  Versioning
// policy: the u8 version is bumped on any incompatible layout change and
// readers reject versions they do not know; unknown *record tags* within a
// known version are skipped via their length prefix.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace nettag::obs {

/// Format constants shared by writer, reader, and tests.
inline constexpr char kNtraceMagic[4] = {'N', 'T', 'R', 'C'};
inline constexpr char kNtraceIndexMagic[4] = {'N', 'T', 'I', 'X'};
inline constexpr std::uint8_t kNtraceVersion = 1;
/// Events between checkpoint records (and footer index entries).
inline constexpr std::uint64_t kNtraceCheckpointInterval = 4096;

/// One decoded event, fields kept as their exact JSONL literals (the same
/// form RecordingSink stores).  `render_jsonl_line` regenerates the byte
/// sequence JsonlSink would have emitted for it.
struct BinaryEvent {
  std::uint64_t seq = 0;
  std::string kind;
  std::vector<RenderedField> fields;
};

/// `e` as its canonical JSONL line (no trailing newline):
/// {"seq":N,"event":"kind","key":literal,...}
[[nodiscard]] std::string render_jsonl_line(const BinaryEvent& e);

/// Splits one JSONL trace line into kind + raw field literals without losing
/// a byte: every value keeps its verbatim literal text.  Throws
/// nettag::Error (with `line_number` in the message) when the line is not a
/// one-level JSON object carrying "seq" and "event".
[[nodiscard]] BinaryEvent split_jsonl_line(std::string_view line,
                                           std::size_t line_number = 0);

/// Streaming writer for the format above.  Not a TraceSink itself — the sink
/// wrapper below adds sequence numbering; converters drive this directly so
/// they can preserve the input's sequence numbers.
class BinaryTraceWriter {
 public:
  explicit BinaryTraceWriter(std::ostream& out,
                             std::uint64_t checkpoint_interval =
                                 kNtraceCheckpointInterval);

  /// Appends one event record (fields as exact JSON literals).
  void write_rendered(std::uint64_t seq, const std::string& kind,
                      const std::vector<RenderedField>& fields);

  /// Writes the footer index + trailer.  Idempotent; called by the
  /// destructor when the caller forgets.
  void finish();

  ~BinaryTraceWriter();
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return events_;
  }

 private:
  [[nodiscard]] std::uint64_t intern(const std::string& s);
  void put_record(std::uint8_t tag, const std::string& payload);
  void put_raw(const char* data, std::size_t n);

  std::ostream& out_;
  std::uint64_t offset_ = 0;  ///< bytes written so far
  std::uint64_t events_ = 0;
  std::uint64_t checkpoint_interval_;
  bool finished_ = false;
  /// Intern table: insertion-ordered id list + sorted lookup.  A std::map
  /// keeps lookups deterministic and the table is vocabulary-sized (tens of
  /// entries), so tree overhead is irrelevant.
  std::vector<std::string> strings_;
  std::vector<std::pair<std::string, std::uint64_t>> by_name_;  // sorted
  /// (seq, offset) of every checkpoint-aligned event record.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> checkpoints_;
};

/// The footer index of a finished file.
struct BinaryTraceIndex {
  std::vector<std::string> strings;  ///< full intern table snapshot
  std::vector<std::pair<std::uint64_t, std::uint64_t>> checkpoints;
};

/// Streaming reader.  Construct on an open istream positioned at byte 0;
/// the header is consumed immediately (throws on bad magic/version).
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(std::istream& in);

  /// Decodes the next event into `out`.  Returns false at end-of-stream
  /// (clean EOF, or the footer index record).  Throws nettag::Error with a
  /// byte offset on a malformed or truncated record.
  [[nodiscard]] bool next(BinaryEvent& out);

  /// Loads the footer index (requires a seekable stream).  Returns false —
  /// leaving the reader fully usable as a pure stream — when the file has
  /// no trailer (truncated run).  After a successful load the reader is
  /// repositioned at the first event record.
  [[nodiscard]] bool load_index();

  /// Repositions at the latest checkpoint whose sequence number is <= `seq`
  /// (or the first record when none is).  The next `next()` resumes there;
  /// callers wanting an exact event skip forward over at most one
  /// checkpoint interval.  Requires a loaded index.
  void seek(std::uint64_t seq);

  [[nodiscard]] bool index_loaded() const noexcept { return indexed_; }
  [[nodiscard]] const BinaryTraceIndex& index() const noexcept {
    return index_;
  }

 private:
  [[nodiscard]] const std::string& interned(std::uint64_t id,
                                            std::uint64_t offset) const;

  std::istream& in_;
  std::uint64_t offset_ = 0;  ///< bytes consumed so far
  std::uint64_t first_record_offset_ = 0;
  bool indexed_ = false;
  bool done_ = false;
  std::vector<std::string> strings_;
  BinaryTraceIndex index_;
};

/// TraceSink writing the binary format; sequence numbers are assigned here,
/// exactly like JsonlSink.  Live events and replayed (pre-rendered) events
/// encode identically, which keeps the parallel-trial byte-identity
/// contract: a jobs=N replayed stream produces the same .ntrace bytes as
/// the serial run.  The footer index is written on destruction.
class NettagBinarySink final : public TraceSink {
 public:
  explicit NettagBinarySink(std::ostream& out);

 private:
  void emit(const char* kind, std::initializer_list<Field> fields) override;
  void emit_rendered(const std::string& kind,
                     const std::vector<RenderedField>& fields) override;

  BinaryTraceWriter writer_;
  std::uint64_t seq_ = 0;
};

/// True when `path` names an ntrace file by extension.
[[nodiscard]] bool has_ntrace_extension(const std::string& path);

/// Converts a JSONL trace stream to the binary format.  Sequence numbers
/// and every field literal are preserved exactly.  Returns events written.
std::uint64_t convert_jsonl_to_binary(std::istream& jsonl, std::ostream& out);

/// Converts a binary trace back to JSONL.  For inputs produced by
/// `convert_jsonl_to_binary` or the repo's sinks the output is
/// byte-identical to the original JSONL.  Returns events written.
std::uint64_t convert_binary_to_jsonl(std::istream& in, std::ostream& jsonl);

}  // namespace nettag::obs
