#include "obs/perf_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace nettag::obs {

namespace {

const char* verdict_word(PerfCaseDelta::Verdict v) {
  switch (v) {
    case PerfCaseDelta::Verdict::kImproved:
      return "IMPROVED";
    case PerfCaseDelta::Verdict::kRegressed:
      return "REGRESSED";
    case PerfCaseDelta::Verdict::kOk:
      break;
  }
  return "ok";
}

std::string format_ms(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e6);
  return buf;
}

/// CSV cell quoting, same convention as the trace CSV writers.
std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

bool PerfDiffResult::has_regression() const noexcept {
  return std::any_of(cases.begin(), cases.end(), [](const PerfCaseDelta& d) {
    return d.verdict == PerfCaseDelta::Verdict::kRegressed;
  });
}

PerfDiffResult diff_perf_manifests(const PerfManifest& baseline,
                                   const PerfManifest& candidate,
                                   const PerfDiffOptions& options) {
  NETTAG_EXPECTS(options.threshold >= 0.0, "threshold must be non-negative");
  NETTAG_EXPECTS(options.mad_k >= 0.0, "mad_k must be non-negative");
  PerfDiffResult result;

  if (baseline.environment.cpu != candidate.environment.cpu) {
    result.notes.push_back("environment: cpu differs (\"" +
                           baseline.environment.cpu + "\" vs \"" +
                           candidate.environment.cpu +
                           "\") — timings may not be comparable");
  }
  if (baseline.environment.compiler != candidate.environment.compiler) {
    result.notes.push_back("environment: compiler differs (" +
                           baseline.environment.compiler + " vs " +
                           candidate.environment.compiler + ")");
  }

  for (const PerfCase& base : baseline.cases) {
    const PerfCase* cand = candidate.find_case(base.name);
    if (cand == nullptr) {
      result.notes.push_back("case \"" + base.name +
                             "\" missing from candidate");
      continue;
    }
    PerfCaseDelta delta;
    delta.name = base.name;
    delta.base_median_ns = base.wall.median_ns;
    delta.cand_median_ns = cand->wall.median_ns;
    delta.noise_ns =
        options.mad_k * std::max(base.wall.mad_ns, cand->wall.mad_ns);
    if (base.wall.median_ns > 0.0) {
      delta.ratio = cand->wall.median_ns / base.wall.median_ns;
      const double moved = cand->wall.median_ns - base.wall.median_ns;
      const double band = options.threshold * base.wall.median_ns;
      if (moved > band && moved > delta.noise_ns) {
        delta.verdict = PerfCaseDelta::Verdict::kRegressed;
      } else if (-moved > band && -moved > delta.noise_ns) {
        delta.verdict = PerfCaseDelta::Verdict::kImproved;
      }
    }
    result.cases.push_back(std::move(delta));
  }
  for (const PerfCase& cand : candidate.cases) {
    if (baseline.find_case(cand.name) == nullptr)
      result.notes.push_back("case \"" + cand.name +
                             "\" missing from baseline");
  }
  return result;
}

std::string render_perf_diff(const PerfDiffResult& result) {
  std::ostringstream os;
  os << "case                              base ms     cand ms   ratio  "
        "verdict\n";
  for (const PerfCaseDelta& d : result.cases) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-32s %10s  %10s  %6.3f  %s\n",
                  d.name.c_str(), format_ms(d.base_median_ns).c_str(),
                  format_ms(d.cand_median_ns).c_str(), d.ratio,
                  verdict_word(d.verdict));
    os << line;
  }
  for (const std::string& note : result.notes) os << "note: " << note << "\n";
  return os.str();
}

PerfTrend build_perf_trend(
    const std::vector<std::pair<std::string, PerfManifest>>& history) {
  PerfTrend trend;
  for (const auto& [label, manifest] : history) {
    for (const PerfCase& c : manifest.cases) {
      if (std::find(trend.case_names.begin(), trend.case_names.end(),
                    c.name) == trend.case_names.end())
        trend.case_names.push_back(c.name);
    }
  }
  for (const auto& [label, manifest] : history) {
    PerfTrend::Row row;
    row.label = label;
    row.written_at = manifest.written_at;
    row.git = manifest.git;
    row.median_ns.assign(trend.case_names.size(), -1.0);
    for (std::size_t i = 0; i < trend.case_names.size(); ++i) {
      const PerfCase* c = manifest.find_case(trend.case_names[i]);
      if (c != nullptr) row.median_ns[i] = c->wall.median_ns;
    }
    trend.rows.push_back(std::move(row));
  }
  return trend;
}

std::string render_perf_trend_csv(const PerfTrend& trend) {
  std::string out = "manifest,written_at,git,case,median_ns\n";
  for (const PerfTrend::Row& row : trend.rows) {
    for (std::size_t i = 0; i < trend.case_names.size(); ++i) {
      if (row.median_ns[i] < 0.0) continue;
      out += csv_cell(row.label) + "," + csv_cell(row.written_at) + "," +
             csv_cell(row.git) + "," + csv_cell(trend.case_names[i]) + "," +
             json_number(row.median_ns[i]) + "\n";
    }
  }
  return out;
}

std::string render_perf_trend_markdown(const PerfTrend& trend) {
  std::ostringstream os;
  os << "| manifest | written_at |";
  for (const std::string& name : trend.case_names) os << " " << name << " (ms) |";
  os << "\n|---|---|";
  for (std::size_t i = 0; i < trend.case_names.size(); ++i) os << "---|";
  os << "\n";
  for (const PerfTrend::Row& row : trend.rows) {
    os << "| " << row.label << " | " << row.written_at << " |";
    for (const double ns : row.median_ns) {
      if (ns < 0.0) {
        os << " — |";
      } else {
        os << " " << format_ms(ns) << " |";
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string render_manifest_metrics(const JsonValue& manifest) {
  std::ostringstream os;
  const JsonValue* schema = manifest.find("schema");
  const JsonValue* tool = manifest.find("tool");
  os << "manifest"
     << (schema != nullptr && schema->is_string()
             ? " " + schema->as_string()
             : std::string())
     << (tool != nullptr && tool->is_string() ? " from " + tool->as_string()
                                              : std::string())
     << "\n";
  const JsonValue* metrics = manifest.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    os << "no metrics section\n";
    return os.str();
  }
  const JsonValue* counters = metrics->find("counters");
  if (counters != nullptr && counters->is_object() &&
      !counters->as_object().empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : counters->as_object())
      os << "  " << name << " = " << value.dump() << "\n";
  }
  const JsonValue* gauges = metrics->find("gauges");
  if (gauges != nullptr && gauges->is_object() &&
      !gauges->as_object().empty()) {
    os << "gauges:\n";
    for (const auto& [name, value] : gauges->as_object())
      os << "  " << name << " = " << value.dump() << "\n";
  }
  const JsonValue* histograms = metrics->find("histograms");
  if (histograms != nullptr && histograms->is_object() &&
      !histograms->as_object().empty()) {
    os << "histograms (p50/p90/p99 from bucket data):\n";
    for (const auto& [name, h] : histograms->as_object()) {
      std::vector<double> bounds;
      std::vector<std::int64_t> counts;
      for (const JsonValue& b : h.at("bounds").as_array())
        bounds.push_back(b.as_number());
      for (const JsonValue& c : h.at("counts").as_array())
        counts.push_back(c.as_int());
      const double lo = h.at("min").as_number();
      const double hi = h.at("max").as_number();
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %s: count=%lld min=%g p50=%g p90=%g p99=%g max=%g\n",
                    name.c_str(),
                    static_cast<long long>(h.at("count").as_int()), lo,
                    histogram_percentile(bounds, counts, lo, hi, 0.50),
                    histogram_percentile(bounds, counts, lo, hi, 0.90),
                    histogram_percentile(bounds, counts, lo, hi, 0.99), hi);
      os << line;
    }
  }
  return os.str();
}

}  // namespace nettag::obs
