#include "obs/perf_manifest.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/work_counters.hpp"
#include "obs/json.hpp"

namespace nettag::obs {

namespace {

/// First "model name" line of /proc/cpuinfo; "unknown" elsewhere.
std::string detect_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::string model = line.substr(colon + 1);
      const auto start = model.find_first_not_of(" \t");
      return start == std::string::npos ? std::string("unknown")
                                        : model.substr(start);
    }
  }
  return "unknown";
}

std::string detect_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string detect_os() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "darwin";
#elif defined(_WIN32)
  return "windows";
#else
  return "unknown";
#endif
}

double median_of_sorted(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  const std::size_t mid = n / 2;
  return n % 2 == 1 ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);
}

void append_kv_int(std::ostringstream& os, bool& first,
                   const std::string& key, std::int64_t value) {
  if (!first) os << ",";
  first = false;
  os << json_string(key) << ":" << value;
}

std::int64_t require_int(const JsonValue& obj, std::string_view key) {
  return obj.at(key).as_int();
}

double require_number(const JsonValue& obj, std::string_view key) {
  return obj.at(key).as_number();
}

}  // namespace

PerfStats compute_perf_stats(int warmup,
                             const std::vector<std::int64_t>& samples_ns) {
  PerfStats stats;
  stats.warmup = warmup;
  stats.reps = static_cast<int>(samples_ns.size());
  if (samples_ns.empty()) return stats;

  std::vector<double> sorted(samples_ns.begin(), samples_ns.end());
  std::sort(sorted.begin(), sorted.end());
  stats.min_ns = static_cast<std::int64_t>(sorted.front());
  stats.max_ns = static_cast<std::int64_t>(sorted.back());
  stats.median_ns = median_of_sorted(sorted);
  // Summation order is fixed: `sorted` is ascending, single-threaded.
  stats.mean_ns =
      std::accumulate(  // nettag-lint: allow(float-accum)
          sorted.begin(), sorted.end(), 0.0) /
      static_cast<double>(sorted.size());

  std::vector<double> deviations;
  deviations.reserve(sorted.size());
  for (const double v : sorted)
    deviations.push_back(std::abs(v - stats.median_ns));
  std::sort(deviations.begin(), deviations.end());
  stats.mad_ns = median_of_sorted(deviations);
  return stats;
}

PerfEnvironment detect_perf_environment(int jobs) {
  PerfEnvironment env;
  env.cpu = detect_cpu_model();
  env.cores = static_cast<int>(std::thread::hardware_concurrency());
  env.compiler = detect_compiler();
#if defined(NETTAG_PERF_CXX_FLAGS)
  env.flags = NETTAG_PERF_CXX_FLAGS;
#endif
  env.jobs = jobs;
  env.os = detect_os();
  env.work_counters = work::compiled();
  return env;
}

const PerfCase* PerfManifest::find_case(const std::string& name) const {
  for (const PerfCase& c : cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string to_json(const PerfManifest& manifest) {
  std::ostringstream os;
  os << "{\"schema\":" << json_string(kPerfManifestSchema)
     << ",\"tool\":" << json_string(manifest.tool)
     << ",\"git\":" << json_string(manifest.git)
     << ",\"written_at\":" << json_string(manifest.written_at);
  const PerfEnvironment& env = manifest.environment;
  os << ",\"environment\":{\"cpu\":" << json_string(env.cpu)
     << ",\"cores\":" << env.cores
     << ",\"compiler\":" << json_string(env.compiler)
     << ",\"flags\":" << json_string(env.flags) << ",\"jobs\":" << env.jobs
     << ",\"os\":" << json_string(env.os)
     << ",\"work_counters\":" << (env.work_counters ? "true" : "false")
     << "}";
  os << ",\"cases\":[";
  for (std::size_t i = 0; i < manifest.cases.size(); ++i) {
    const PerfCase& c = manifest.cases[i];
    if (i > 0) os << ",";
    os << "{\"name\":" << json_string(c.name) << ",\"config\":{";
    {
      bool first = true;
      for (const auto& [key, value] : c.config)
        append_kv_int(os, first, key, value);
    }
    os << "},\"warmup\":" << c.wall.warmup << ",\"reps\":" << c.wall.reps
       << ",\"wall_ns\":{\"min\":" << c.wall.min_ns
       << ",\"max\":" << c.wall.max_ns
       << ",\"median\":" << json_number(c.wall.median_ns)
       << ",\"mad\":" << json_number(c.wall.mad_ns)
       << ",\"mean\":" << json_number(c.wall.mean_ns) << "}";
    os << ",\"samples_ns\":[";
    for (std::size_t s = 0; s < c.samples_ns.size(); ++s) {
      if (s > 0) os << ",";
      os << c.samples_ns[s];
    }
    os << "],\"throughput\":{";
    {
      bool first = true;
      for (const auto& [key, value] : c.throughput) {
        if (!first) os << ",";
        first = false;
        os << json_string(key) << ":" << json_number(value);
      }
    }
    os << "},\"work\":{";
    {
      bool first = true;
      for (const auto& [key, value] : c.work) {
        if (!first) os << ",";
        first = false;
        os << json_string(key) << ":" << value;
      }
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

bool is_perf_manifest(const JsonValue& doc) {
  if (!doc.is_object()) return false;
  const JsonValue* schema = doc.find("schema");
  return schema != nullptr && schema->is_string() &&
         schema->as_string() == kPerfManifestSchema;
}

PerfManifest parse_perf_manifest(const JsonValue& doc) {
  NETTAG_EXPECTS(doc.is_object(), "perf manifest must be a JSON object");
  NETTAG_EXPECTS(is_perf_manifest(doc),
                 std::string("not a ") + kPerfManifestSchema + " document");

  PerfManifest manifest;
  manifest.tool = doc.at("tool").as_string();
  manifest.git = doc.at("git").as_string();
  manifest.written_at = doc.at("written_at").as_string();

  const JsonValue& env = doc.at("environment");
  manifest.environment.cpu = env.at("cpu").as_string();
  manifest.environment.cores = static_cast<int>(require_int(env, "cores"));
  manifest.environment.compiler = env.at("compiler").as_string();
  manifest.environment.flags = env.at("flags").as_string();
  manifest.environment.jobs = static_cast<int>(require_int(env, "jobs"));
  manifest.environment.os = env.at("os").as_string();
  manifest.environment.work_counters = env.at("work_counters").as_bool();

  for (const JsonValue& entry : doc.at("cases").as_array()) {
    PerfCase c;
    c.name = entry.at("name").as_string();
    for (const auto& [key, value] : entry.at("config").as_object())
      c.config.emplace_back(key, value.as_int());
    for (const JsonValue& sample : entry.at("samples_ns").as_array())
      c.samples_ns.push_back(sample.as_int());
    const JsonValue& wall = entry.at("wall_ns");
    c.wall.warmup = static_cast<int>(require_int(entry, "warmup"));
    c.wall.reps = static_cast<int>(require_int(entry, "reps"));
    c.wall.min_ns = require_int(wall, "min");
    c.wall.max_ns = require_int(wall, "max");
    c.wall.median_ns = require_number(wall, "median");
    c.wall.mad_ns = require_number(wall, "mad");
    c.wall.mean_ns = require_number(wall, "mean");
    for (const auto& [key, value] : entry.at("throughput").as_object())
      c.throughput.emplace_back(key, value.as_number());
    for (const auto& [key, value] : entry.at("work").as_object())
      c.work.emplace_back(key, static_cast<std::uint64_t>(value.as_int()));
    manifest.cases.push_back(std::move(c));
  }
  return manifest;
}

PerfManifest load_perf_manifest(const std::string& path) {
  std::ifstream in(path);
  NETTAG_EXPECTS(in.is_open(), "cannot open perf manifest: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_perf_manifest(parse_json(buf.str()));
}

bool write_perf_manifest(const PerfManifest& manifest,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(manifest) << "\n";
  out.flush();
  return out.good();
}

}  // namespace nettag::obs
