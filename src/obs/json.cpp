#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace nettag::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(const std::string& s) {
  // Built with explicit appends rather than `"\"" + escape + "\""`: the
  // operator+(const char*, string&&) form trips gcc 12's -Wrestrict false
  // positive (PR105329) when the insert is inlined.
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

}  // namespace nettag::obs
