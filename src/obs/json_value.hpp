// Minimal JSON document model + parser for the offline analysis tools.
//
// PR 1's exporters only write JSON; the second observability layer also has
// to READ what they wrote — JSONL traces (`obs::TraceReader`) and run
// manifests (`nettag-obs check` / `diff`).  This is a small recursive-descent
// parser over the RFC 8259 grammar, sized for machine-generated input: no
// comments, no trailing commas, UTF-8 passed through verbatim (escapes
// other than \uXXXX surrogate pairs are decoded; \u escapes decode to UTF-8).
//
// Objects preserve insertion order (vector of pairs) so diff reports read in
// document order; lookup is a linear scan, which is fine at manifest sizes.
// Malformed input throws nettag::Error with a byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nettag::obs {

/// One parsed JSON value (null / bool / number / string / array / object).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  // Typed accessors; wrong-type access throws nettag::Error.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number() rounded to the nearest integer (counters, slot counts).
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or when not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// find() that throws when the member is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// The value re-rendered as compact JSON (numbers via shortest
  /// round-trip, object order preserved).  Mostly for diagnostics.
  [[nodiscard]] std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// Throws nettag::Error (with byte offset) on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace nettag::obs
