// Offline analysis of traces and manifests — the layer that READS what the
// PR 1 exporters write.  Three consumers share it: the `nettag-obs` CLI
// (summarize / check / diff), the ctest artifact gates, and examples that
// render a session's anatomy from its own trace.
//
// Three capabilities:
//   * summarize — fold a trace's session events into per-round / per-tier
//     tables (the "session anatomy" view);
//   * check — validate a trace's internal slot accounting (slot_batch sums
//     must reproduce each session_end's bit_slots/id_slots, round numbers
//     monotone, sessions properly bracketed) and cross-validate it against
//     the run manifest's `trace.*` counters (written by AccountingSink);
//   * diff — compare two run manifests structurally: counters, slots, and
//     every other deterministic value must match exactly; wall-clock
//     (`*_ns`, the "timings" subtree) only within a relative tolerance.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json_value.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace nettag::obs {

// ---------------------------------------------------------------------------
// AccountingSink — ties a live trace to its manifest.
// ---------------------------------------------------------------------------

/// Forwards every event to an inner sink and tallies session totals into a
/// Registry (counters `trace.events`, `trace.sessions`, `trace.bit_slots`,
/// `trace.id_slots`).  Installed whenever a run writes both a trace and a
/// manifest, so `nettag-obs check` can prove the two artifacts describe the
/// same run.  The counters exist (at zero) from construction.
class AccountingSink final : public TraceSink {
 public:
  AccountingSink(TraceSink& inner, Registry& registry);

 private:
  void emit(const char* kind, std::initializer_list<Field> fields) override;
  void emit_rendered(const std::string& kind,
                     const std::vector<RenderedField>& fields) override;

  TraceSink& inner_;
  Registry& registry_;
};

// ---------------------------------------------------------------------------
// Trace checking
// ---------------------------------------------------------------------------

/// Outcome of a trace validation: accumulated totals plus every violation
/// found (empty errors == consistent trace).
struct TraceCheckResult {
  std::int64_t events = 0;
  std::int64_t sessions = 0;
  std::int64_t bit_slots = 0;  ///< summed from frame/checking slot batches
  std::int64_t id_slots = 0;   ///< summed from request/indicator batches
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Incremental trace validator: feed events one at a time (in trace order),
/// then call finish() once.  Checks:
///   * exactly one session_end per session_begin, properly bracketed;
///   * round numbers strictly increasing within a session;
///   * per session, slot_batch sums by kind reproduce the session_end's
///     bit_slots (frame + checking) and id_slots (request + indicator);
///   * session_end round count matches the round events seen.
/// Non-session events (estimate_*, idcollect_*, ...) pass through untouched.
/// State is one open-session accumulator — constant memory (plus the error
/// list), which is what lets `nettag-obs check` stream GB-scale traces.
class TraceChecker {
 public:
  void feed(const TraceEvent& e);
  /// Flags a still-open session and returns the accumulated result.
  [[nodiscard]] TraceCheckResult finish();

 private:
  TraceCheckResult result_;
  bool open_ = false;
  std::uint64_t begin_seq_ = 0;
  std::int64_t session_bit_slots_ = 0;
  std::int64_t session_id_slots_ = 0;
  std::int64_t rounds_seen_ = 0;
  std::int64_t last_round_ = 0;
};

/// Validates a fully-materialized trace (wraps TraceChecker).
[[nodiscard]] TraceCheckResult check_trace(
    const std::vector<TraceEvent>& events);

/// Validates a trace by streaming it through `cursor` — constant memory.
[[nodiscard]] TraceCheckResult check_trace(class TraceCursor& cursor);

/// Cross-validates `manifest` (a parsed nettag.run_manifest/1 document)
/// against the totals `check_trace` computed from its trace: the manifest's
/// `trace.*` counters must equal the trace's. Appends violations to
/// `result.errors`.  A manifest without `trace.*` counters (the run was not
/// traced, or predates AccountingSink) is itself an error — the pair cannot
/// be cross-validated.
void check_manifest_against_trace(const JsonValue& manifest,
                                  TraceCheckResult& result);

// ---------------------------------------------------------------------------
// Trace summarization (session anatomy)
// ---------------------------------------------------------------------------

/// One round of one session as the trace recorded it.
struct RoundSummary {
  std::int64_t round = 0;
  std::int64_t request_slots = 0;
  std::int64_t frame_slots = 0;
  std::int64_t indicator_slots = 0;
  std::int64_t checking_slots = 0;
  std::int64_t new_reader_bits = 0;
  std::int64_t relay_tx = 0;
  std::int64_t bitmap_bits = 0;
  bool pending = false;
  /// tier -> relay transmissions this round (from relay_tier events).
  std::map<int, std::int64_t> relay_by_tier;
};

/// One CCM session reconstructed from its trace events.
struct SessionSummary {
  std::uint64_t begin_seq = 0;
  std::int64_t frame_size = 0;
  std::int64_t tags = 0;
  std::int64_t rounds = 0;
  bool completed = false;
  std::int64_t bit_slots = 0;
  std::int64_t id_slots = 0;
  std::int64_t bitmap_bits = 0;
  std::vector<RoundSummary> round_detail;
  /// tier -> total relay transmissions across rounds.
  std::map<int, std::int64_t> relay_tier_totals;
};

/// Incremental session reconstructor: feed events in trace order, read
/// `sessions()` when done.  Memory is proportional to the *summaries* (a
/// few words per round), never to the event count, so it streams traces of
/// any length.  Tolerates inconsistent traces — run TraceChecker for
/// judgment.
class SessionSummarizer {
 public:
  void feed(const TraceEvent& e);
  [[nodiscard]] std::vector<SessionSummary> take() { return std::move(sessions_); }

 private:
  std::vector<SessionSummary> sessions_;
  bool open_ = false;
  RoundSummary pending_round_;
};

/// Reconstructs every session of a materialized trace (wraps the class).
[[nodiscard]] std::vector<SessionSummary> summarize_sessions(
    const std::vector<TraceEvent>& events);

/// Reconstructs sessions by streaming through `cursor` — constant memory in
/// the event count.
[[nodiscard]] std::vector<SessionSummary> summarize_sessions(
    class TraceCursor& cursor);

/// Per-round/per-tier anatomy table of one session (multi-line string).
[[nodiscard]] std::string render_session_table(const SessionSummary& session);

/// One overview line per session plus trace totals.
[[nodiscard]] std::string render_trace_overview(
    const std::vector<SessionSummary>& sessions);

// ---------------------------------------------------------------------------
// Manifest diff
// ---------------------------------------------------------------------------

struct ManifestDiffOptions {
  /// Relative tolerance for wall-clock values (`*_ns` keys and the
  /// "timings" subtree): |a-b| / max(|a|,|b|,1) must not exceed it.
  /// Negative (the default) means wall-clock drift is never a violation.
  double timing_tolerance = -1.0;
  /// Top-level keys ignored in addition to the defaults
  /// ("written_at", "git" — machine/run identity, not behavior).
  std::vector<std::string> ignore_keys;
};

struct ManifestDiffResult {
  /// Deterministic-value mismatches (slot counts, counters, config...).
  std::vector<std::string> structural;
  /// Wall-clock drifts beyond the tolerance (empty when tolerance < 0).
  std::vector<std::string> timing;

  [[nodiscard]] bool ok() const noexcept {
    return structural.empty() && timing.empty();
  }
};

/// Structurally compares two parsed manifests (see ManifestDiffOptions).
[[nodiscard]] ManifestDiffResult diff_manifests(
    const JsonValue& baseline, const JsonValue& candidate,
    const ManifestDiffOptions& options = {});

}  // namespace nettag::obs
