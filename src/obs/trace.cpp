#include "obs/trace.hpp"

#include <ostream>

#include "common/error.hpp"
#include "obs/binary_trace.hpp"
#include "obs/json.hpp"

namespace nettag::obs {

std::string Field::value_json() const {
  switch (type_) {
    case Type::kInt: return std::to_string(int_);
    case Type::kUint: return std::to_string(uint_);
    case Type::kDouble: return json_number(double_);
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kStr: return json_string(str_);
  }
  return "null";
}

TraceSink& null_sink() noexcept {
  static NullSink sink;
  return sink;
}

void JsonlSink::emit(const char* kind, std::initializer_list<Field> fields) {
  out_ << "{\"seq\":" << seq_++ << ",\"event\":" << json_string(kind);
  for (const Field& f : fields)
    out_ << "," << json_string(f.key()) << ":" << f.value_json();
  out_ << "}\n";
}

void JsonlSink::emit_rendered(const std::string& kind,
                              const std::vector<RenderedField>& fields) {
  out_ << "{\"seq\":" << seq_++ << ",\"event\":" << json_string(kind);
  for (const auto& [key, value] : fields)
    out_ << "," << json_string(key) << ":" << value;
  out_ << "}\n";
}

namespace {

/// CSV-quotes `cell` when it contains a delimiter, quote, or newline.
std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

CsvSink::CsvSink(std::ostream& out) : TraceSink(true), out_(out) {
  out_ << "seq,event,field,value\n";
}

void CsvSink::emit(const char* kind, std::initializer_list<Field> fields) {
  if (fields.size() == 0) {
    out_ << seq_ << "," << csv_cell(kind) << ",,\n";
  } else {
    for (const Field& f : fields) {
      out_ << seq_ << "," << csv_cell(kind) << "," << csv_cell(f.key()) << ","
           << csv_cell(f.value_json()) << "\n";
    }
  }
  ++seq_;
}

void CsvSink::emit_rendered(const std::string& kind,
                            const std::vector<RenderedField>& fields) {
  if (fields.empty()) {
    out_ << seq_ << "," << csv_cell(kind) << ",,\n";
  } else {
    for (const auto& [key, value] : fields) {
      out_ << seq_ << "," << csv_cell(kind) << "," << csv_cell(key) << ","
           << csv_cell(value) << "\n";
    }
  }
  ++seq_;
}

TraceFile::TraceFile(const std::string& path) {
  if (path.empty()) return;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const bool ntrace = has_ntrace_extension(path);
  out_.open(path, ntrace ? std::ios::binary | std::ios::out : std::ios::out);
  NETTAG_EXPECTS(out_.is_open(), "cannot open trace file");
  if (ntrace) {
    sink_ = std::make_unique<NettagBinarySink>(out_);
  } else if (csv) {
    sink_ = std::make_unique<CsvSink>(out_);
  } else {
    sink_ = std::make_unique<JsonlSink>(out_);
  }
}

std::string RecordingSink::Event::value(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

std::size_t RecordingSink::count(const std::string& kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += e.kind == kind ? 1 : 0;
  return n;
}

void RecordingSink::emit(const char* kind,
                         std::initializer_list<Field> fields) {
  Event e;
  e.kind = kind;
  e.fields.reserve(fields.size());
  for (const Field& f : fields) e.fields.emplace_back(f.key(), f.value_json());
  events_.push_back(std::move(e));
}

void RecordingSink::emit_rendered(const std::string& kind,
                                  const std::vector<RenderedField>& fields) {
  Event e;
  e.kind = kind;
  e.fields = fields;
  events_.push_back(std::move(e));
}

void replay_events(const std::vector<RecordingSink::Event>& events,
                   TraceSink& sink) {
  for (const RecordingSink::Event& e : events) sink.replay(e.kind, e.fields);
}

}  // namespace nettag::obs
