// Metrics registry: named counters, gauges, fixed-bucket histograms, and
// wall-clock timing scopes.
//
// This is the aggregation substrate the benches, the CLI, and the report
// renderers share — one place where per-run numbers accumulate, one JSON
// dump format for machine-readable artifacts.  Naming convention (see
// docs/OBSERVABILITY.md): lowercase dotted paths, `subsystem.metric`, e.g.
// `ccm.rounds`, `bench.trials`, `cli.detect` — units spelled out in a
// suffix when they are not obvious (`_bits`, `_slots`, `_ns`).
//
// The registry is deliberately single-threaded (one per run/driver); merge()
// exists so future parallel trial execution can reduce worker registries.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nettag::obs {

/// Monotonically increasing integer metric.
struct Counter {
  std::int64_t value = 0;

  void add(std::int64_t delta = 1) noexcept { value += delta; }
};

/// Last-write-wins floating-point metric.
struct Gauge {
  double value = 0.0;
};

/// Aggregate of a wall-clock timing scope (see ScopedTimer).
struct Timing {
  std::int64_t calls = 0;
  std::int64_t total_ns = 0;
  std::int64_t max_ns = 0;

  void record(std::int64_t ns) noexcept {
    ++calls;
    total_ns += ns;
    if (ns > max_ns) max_ns = ns;
  }
};

/// Fixed-bucket histogram: bucket i counts samples v <= bounds[i] (first
/// match wins); one implicit overflow bucket catches the rest.
class Histogram {
 public:
  Histogram() : Histogram(default_bounds()) {}
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::int64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }
  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  void merge(const Histogram& other);

  /// Estimated q-quantile (q in [0,1], e.g. 0.5/0.9/0.99), linearly
  /// interpolated within the containing bucket and clamped to the observed
  /// [min, max].  0 when empty.  An estimate, not an exact order statistic:
  /// resolution is the bucket width.
  [[nodiscard]] double percentile(double q) const noexcept;

  /// 1-2-5 decades from 1 to 1e9 — a sane default for counts and sizes.
  [[nodiscard]] static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metric store.  Lookup creates on first use; references stay valid
/// for the registry's lifetime (node-based map storage).
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) {
    return gauges_[name];
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }
  [[nodiscard]] Timing& timing(const std::string& name) {
    return timings_[name];
  }

  // Shorthands for the common one-shot updates.
  void add(const std::string& name, std::int64_t delta = 1) {
    counter(name).add(delta);
  }
  void set(const std::string& name, double value) {
    gauge(name).value = value;
  }
  void observe(const std::string& name, double value) {
    histogram(name).observe(value);
  }
  void record_timing(const std::string& name, std::int64_t ns) {
    timing(name).record(ns);
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, Timing>& timings()
      const noexcept {
    return timings_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           timings_.empty();
  }

  /// Folds `other` in: counters/timings add, gauges last-write-wins,
  /// histograms with identical bounds merge (mismatched bounds throw).
  void merge(const Registry& other);

  void clear() noexcept;

  /// Deterministic JSON dump (names sorted), e.g.
  ///   {"counters":{"ccm.rounds":12},"gauges":{...},
  ///    "timings":{"bench.sweep":{"calls":1,"total_ns":...,"max_ns":...}},
  ///    "histograms":{"ccm.rounds_per_session":{"bounds":[...],
  ///      "counts":[...],"count":3,"sum":7,"min":1,"max":4,
  ///      "p50":2,"p90":4,"p99":4}}}
  /// With `redact_timing_ns`, timing total_ns/max_ns render as 0 (calls are
  /// kept) — used for byte-reproducible manifests under SOURCE_DATE_EPOCH.
  [[nodiscard]] std::string to_json(bool redact_timing_ns = false) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Timing> timings_;
};

/// RAII wall-clock scope: records elapsed steady-clock nanoseconds into
/// `registry.timing(name)` on destruction (or on an early `stop()`).
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string name)
      : registry_(registry),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Nanoseconds since construction; non-negative and non-decreasing
  /// (steady_clock is monotonic by contract).
  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Records the elapsed time now; the destructor then does nothing.
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    registry_.record_timing(name_, elapsed_ns());
  }

 private:
  Registry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// Percentile estimate over raw bucket data — the same interpolation
/// Histogram::percentile uses, exposed for consumers that hold a histogram
/// parsed back out of a manifest (bounds/counts arrays) rather than a live
/// Histogram.  `counts` must have bounds.size() + 1 entries (overflow last);
/// `lo`/`hi` are the observed min/max the estimate is clamped to.
[[nodiscard]] double histogram_percentile(const std::vector<double>& bounds,
                                          const std::vector<std::int64_t>& counts,
                                          double lo, double hi,
                                          double q) noexcept;

}  // namespace nettag::obs
