// Machine-readable run manifests.
//
// A run manifest is the provenance record of one bench/CLI invocation: what
// tool ran, with which configuration and seed, against which source revision,
// and what the metrics registry accumulated.  Benches write one per run (see
// bench_common's NETTAG_MANIFEST hook) so the BENCH_*.json trajectory can be
// diffed run-over-run; the CLI writes one behind `--metrics FILE`.
//
// Schema ("nettag.run_manifest/1"):
//   {
//     "schema": "nettag.run_manifest/1",
//     "tool": "fig4_execution_time",
//     "command": "run_sweep",
//     "git": "<git describe --always --dirty at configure time>",
//     "written_at": "2026-08-07T12:00:00Z",
//     "config": { "tags": 10000, "seed": 20190707, ... },
//     "metrics": { "counters": {...}, "gauges": {...}, ... },   // Registry
//     ...one top-level section per add_section() call...
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"

namespace nettag::obs {

/// Source revision baked in at configure time ("unknown" outside git).
[[nodiscard]] const char* build_git_describe() noexcept;

/// Current wall-clock time as ISO-8601 UTC (e.g. "2026-08-07T12:00:00Z").
[[nodiscard]] std::string iso8601_utc_now();

/// True when a valid SOURCE_DATE_EPOCH pins this process's manifests to be
/// byte-reproducible.  Writers must then omit execution-identity values —
/// wall-clock nanoseconds (redacted by to_json) but also worker counts and
/// per-worker timings — so the same run produces the same bytes regardless
/// of machine, wall-clock, or NETTAG_JOBS.
[[nodiscard]] bool manifest_reproducible();

/// Builder for one manifest document.
class RunManifest {
 public:
  RunManifest(std::string tool, std::string command)
      : tool_(std::move(tool)), command_(std::move(command)) {}

  // Config entries render inside the "config" object, in insertion order.
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::uint64_t value);
  void set(const std::string& key, int value);
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);

  /// Adds a top-level section; `raw_json` must be a complete JSON value.
  void add_section(const std::string& key, std::string raw_json);

  /// The full document; `metrics` (when non-null) dumps as "metrics".
  [[nodiscard]] std::string to_json(const Registry* metrics = nullptr) const;

  /// Writes to_json() + newline to `path`; false on I/O failure.
  bool write_file(const std::string& path,
                  const Registry* metrics = nullptr) const;

 private:
  std::string tool_;
  std::string command_;
  /// Config values pre-rendered as JSON literals.
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace nettag::obs
