#include "sim/channel.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "common/error.hpp"

namespace nettag::sim {

SlotObservation simulate_slot(const net::Topology& topology,
                              std::span<const TagIndex> transmitters) {
  const auto n = static_cast<std::size_t>(topology.tag_count());
  SlotObservation obs;
  obs.heard_count.assign(n, 0);
  obs.decoded_from.assign(n, kInvalidTagIndex);

  std::vector<bool> is_transmitting(n, false);
  for (const TagIndex t : transmitters) {
    NETTAG_EXPECTS(t >= 0 && static_cast<std::size_t>(t) < n,
                   "transmitter index out of range");
    NETTAG_EXPECTS(!is_transmitting[static_cast<std::size_t>(t)],
                   "duplicate transmitter in one slot");
    is_transmitting[static_cast<std::size_t>(t)] = true;
  }

  for (const TagIndex tx : transmitters) {
    for (const TagIndex rx : topology.neighbors(tx)) {
      const auto r = static_cast<std::size_t>(rx);
      if (is_transmitting[r]) continue;  // half duplex: TX cannot hear
      if (++obs.heard_count[r] == 1) {
        obs.decoded_from[r] = tx;
      } else {
        obs.decoded_from[r] = kInvalidTagIndex;  // collision destroys decode
      }
    }
    if (topology.reader_hears(tx)) {
      if (++obs.reader_heard_count == 1) {
        obs.reader_decoded_from = tx;
      } else {
        obs.reader_decoded_from = kInvalidTagIndex;
      }
    }
  }
  if (contract::kChecked && contract::enabled()) {
    // Slotted-ALOHA decode semantics: a receiver decodes exactly when one
    // in-range transmission occupied the slot; collisions destroy decode.
    for (std::size_t r = 0; r < n; ++r) {
      NETTAG_ENSURE((obs.decoded_from[r] != kInvalidTagIndex) ==
                        (obs.heard_count[r] == 1),
                    "tag decode disagrees with its heard-transmission count");
      NETTAG_ENSURE(obs.decoded_from[r] == kInvalidTagIndex ||
                        !is_transmitting[r],
                    "half-duplex transmitter decoded a slot it sent in");
    }
    NETTAG_ENSURE((obs.reader_decoded_from != kInvalidTagIndex) ==
                      (obs.reader_heard_count == 1),
                  "reader decode disagrees with its heard count");
  }
  return obs;
}

BusySense sense_busy(const net::Topology& topology,
                     std::span<const TagIndex> transmitters) {
  const auto n = static_cast<std::size_t>(topology.tag_count());
  BusySense sense;
  sense.tag_busy.assign(n, false);
  std::vector<bool> is_transmitting(n, false);
  for (const TagIndex t : transmitters)
    is_transmitting[static_cast<std::size_t>(t)] = true;
  for (const TagIndex tx : transmitters) {
    for (const TagIndex rx : topology.neighbors(tx)) {
      if (!is_transmitting[static_cast<std::size_t>(rx)])
        sense.tag_busy[static_cast<std::size_t>(rx)] = true;
    }
    if (topology.reader_hears(tx)) sense.reader_busy = true;
  }
  return sense;
}

}  // namespace nettag::sim
