// Slot-synchronous broadcast channel.
//
// The physical layer of the paper is deliberately minimal: in each slot a
// tag either transmits, listens, or sleeps; a listener senses BUSY when at
// least one in-range transmitter is active (collisions merge into "busy" —
// exactly what CCM exploits), and can DECODE a payload only when exactly one
// neighbor transmits (what the ID-collection baselines must fight for).
// Half duplex: a transmitting tag senses nothing in that slot (SII).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace nettag::sim {

/// What every listener observed in one slot, given the transmitter set.
struct SlotObservation {
  /// Per tag: number of neighboring transmitters sensed (0 = idle channel).
  /// A transmitting tag senses 0 regardless (half duplex).
  std::vector<int> heard_count;

  /// Per tag: the single neighbor whose payload was decodable, or
  /// kInvalidTagIndex (idle, collision, or self transmitting).
  std::vector<TagIndex> decoded_from;

  /// Number of tier-1 transmitters the reader sensed in this slot.
  int reader_heard_count = 0;

  /// The single transmitter the reader decoded, or kInvalidTagIndex.
  TagIndex reader_decoded_from = kInvalidTagIndex;
};

/// Simulates one slot: `transmitters` transmit simultaneously; everyone else
/// listens.  Duplicate entries in `transmitters` are a caller bug.
[[nodiscard]] SlotObservation simulate_slot(
    const net::Topology& topology, std::span<const TagIndex> transmitters);

/// Fast predicate used by wave-style frames (CCM checking frame): returns,
/// for each tag, whether it sensed a busy channel (>= 1 neighbor
/// transmitting), plus whether the reader sensed anything.  Cheaper than a
/// full SlotObservation when decode identity is irrelevant.
struct BusySense {
  std::vector<bool> tag_busy;
  bool reader_busy = false;
};
[[nodiscard]] BusySense sense_busy(const net::Topology& topology,
                                   std::span<const TagIndex> transmitters);

}  // namespace nettag::sim
