// Gen2-flavoured air-interface timing.
//
// The paper reports execution time in slot counts because "the RFID Gen2
// standard just specifies a time interval of each slot but does not give an
// exact value" (SVI-B.1).  This module supplies the missing conversion as a
// configurable profile following the EPC C1G2 / ISO 18000-63 timing
// structure: reader symbols are PIE-coded around a base Tari, tag replies
// are FM0/Miller-coded at the backscatter link frequency (BLF), and every
// exchange pays the T1/T2 turnarounds.  Networked tags are active radios,
// not backscatterers, but keeping the Gen2 parameterisation makes the
// wall-clock numbers comparable with the RFID literature.
#pragma once

#include <algorithm>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/clock.hpp"

namespace nettag::sim {

/// Air-interface parameters (defaults: a common mid-rate Gen2 profile).
struct Gen2Timing {
  /// Reference interval of reader PIE symbols, microseconds (6.25..25).
  double tari_us = 12.5;

  /// Backscatter link frequency, kHz (40..640).
  double blf_khz = 320.0;

  /// Tag-to-reader modulation: 1 = FM0, 2/4/8 = Miller subcarrier cycles.
  int miller = 4;

  /// Extended preamble (TRext): longer pilot tone, more robust decoding.
  bool pilot_tone = true;

  /// --- Derived reader-link quantities ---

  /// Reader-to-tag calibration symbol, RTcal in [2.5, 3] Tari; we fix the
  /// customary 2.75 Tari.
  [[nodiscard]] double rtcal_us() const { return 2.75 * tari_us; }

  /// Average reader data-bit time: data-0 is one Tari, data-1 is 1.5..2
  /// Tari; balanced payloads average ~1.625 Tari.
  [[nodiscard]] double reader_bit_us() const { return 1.625 * tari_us; }

  /// --- Derived tag-link quantities ---

  /// Backscatter link period T_pri = 1 / BLF, microseconds.
  [[nodiscard]] double tpri_us() const { return 1'000.0 / blf_khz; }

  /// Tag data-bit time: `miller` subcarrier cycles per bit.
  [[nodiscard]] double tag_bit_us() const {
    return static_cast<double>(miller) * tpri_us();
  }

  /// Tag preamble length in bits (C1G2 Table: FM0 6/18, Miller 10/22,
  /// depending on TRext).
  [[nodiscard]] int tag_preamble_bits() const {
    const int base = (miller == 1) ? 6 : 10;
    return pilot_tone ? base + 12 : base;
  }

  /// --- Turnarounds ---

  /// T1: reader-to-tag turnaround, max(RTcal, 10 T_pri).
  [[nodiscard]] double t1_us() const {
    return std::max(rtcal_us(), 10.0 * tpri_us());
  }

  /// T2: tag-to-reader turnaround, 3..20 T_pri; we use the midpoint.
  [[nodiscard]] double t2_us() const { return 11.5 * tpri_us(); }

  /// --- Slot durations of this library's two slot kinds ---

  /// t_s: a 1-bit tag slot = T1 + preamble + payload bit + end dummy + T2.
  [[nodiscard]] double bit_slot_us() const {
    return t1_us() + (tag_preamble_bits() + 2) * tag_bit_us() + t2_us();
  }

  /// t_id: a 96-bit slot.  Tag-originated (IDs relayed in SICP) by default;
  /// pass reader_link = true for reader-originated segments (requests,
  /// indicator-vector chunks) which use the PIE reader rate.
  [[nodiscard]] double id_slot_us(bool reader_link = false) const {
    if (reader_link) {
      // Frame-sync (~ RTcal + Tari + delimiter 12.5 us) + 96 PIE bits + T1.
      return 12.5 + rtcal_us() + tari_us + 96.0 * reader_bit_us() + t1_us();
    }
    return t1_us() + (tag_preamble_bits() + 96 + 1) * tag_bit_us() + t2_us();
  }

  /// Wall-clock seconds for a recorded slot budget.  `reader_id_slots`
  /// selects which timing the 96-bit slots use (CCM's id-slots are reader
  /// broadcasts; SICP's are mostly tag transmissions).
  [[nodiscard]] double seconds(const SlotClock& clock,
                               bool reader_id_slots) const {
    return (static_cast<double>(clock.bit_slots()) * bit_slot_us() +
            static_cast<double>(clock.id_slots()) *
                id_slot_us(reader_id_slots)) *
           1e-6;
  }

  void validate() const {
    NETTAG_EXPECTS(tari_us >= 6.25 && tari_us <= 25.0,
                   "Tari must be in [6.25, 25] us");
    NETTAG_EXPECTS(blf_khz >= 40.0 && blf_khz <= 640.0,
                   "BLF must be in [40, 640] kHz");
    NETTAG_EXPECTS(miller == 1 || miller == 2 || miller == 4 || miller == 8,
                   "miller must be 1, 2, 4 or 8");
  }
};

}  // namespace nettag::sim
