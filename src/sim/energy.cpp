#include "sim/energy.hpp"

#include <algorithm>

namespace nettag::sim {

BitCount EnergyMeter::total_sent() const noexcept {
  BitCount total = 0;
  for (const auto b : sent_) total += b;
  return total;
}

BitCount EnergyMeter::total_received() const noexcept {
  BitCount total = 0;
  for (const auto b : received_) total += b;
  return total;
}

EnergySummary EnergyMeter::summarize() const {
  EnergySummary s;
  if (sent_.empty()) return s;
  const auto n = static_cast<double>(sent_.size());
  s.max_sent_bits =
      static_cast<double>(*std::max_element(sent_.begin(), sent_.end()));
  s.max_received_bits = static_cast<double>(
      *std::max_element(received_.begin(), received_.end()));
  s.avg_sent_bits = static_cast<double>(total_sent()) / n;
  s.avg_received_bits = static_cast<double>(total_received()) / n;
  return s;
}

void EnergyMeter::merge(const EnergyMeter& other) {
  NETTAG_EXPECTS(other.sent_.size() == sent_.size(),
                 "cannot merge meters of different sizes");
  for (std::size_t i = 0; i < sent_.size(); ++i) {
    sent_[i] += other.sent_[i];
    received_[i] += other.received_[i];
  }
}

}  // namespace nettag::sim
