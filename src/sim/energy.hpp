// Per-tag energy accounting.
//
// Energy is the paper's headline metric, measured indirectly as the number
// of bits each tag sends and receives (SVI-A; Tables I-IV).  Listening to a
// slot costs like receiving its bit (carrier sensing keeps the radio in RX),
// so protocols charge one received bit per monitored slot, and the full
// payload length for decoded messages (indicator-vector segments, IDs).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nettag::sim {

/// Aggregate of the per-tag counters — one row of Tables I-IV.
struct EnergySummary {
  double max_sent_bits = 0.0;
  double avg_sent_bits = 0.0;
  double max_received_bits = 0.0;
  double avg_received_bits = 0.0;
};

/// Counts bits sent/received for every tag of one trial.
class EnergyMeter {
 public:
  explicit EnergyMeter(int tag_count) {
    NETTAG_EXPECTS(tag_count >= 0, "tag count must be non-negative");
    sent_.assign(static_cast<std::size_t>(tag_count), 0);
    received_.assign(static_cast<std::size_t>(tag_count), 0);
  }

  void add_sent(TagIndex t, BitCount bits) {
    NETTAG_EXPECTS(bits >= 0, "bit count must be non-negative");
    sent_[checked(t)] += bits;
  }

  void add_received(TagIndex t, BitCount bits) {
    NETTAG_EXPECTS(bits >= 0, "bit count must be non-negative");
    received_[checked(t)] += bits;
  }

  /// Charges every tag for decoding one reader broadcast of `bits` bits.
  void charge_broadcast(BitCount bits) {
    NETTAG_EXPECTS(bits >= 0, "bit count must be non-negative");
    for (auto& r : received_) r += bits;
  }

  [[nodiscard]] BitCount sent(TagIndex t) const { return sent_[checked(t)]; }
  [[nodiscard]] BitCount received(TagIndex t) const {
    return received_[checked(t)];
  }

  [[nodiscard]] int tag_count() const noexcept {
    return static_cast<int>(sent_.size());
  }

  [[nodiscard]] BitCount total_sent() const noexcept;
  [[nodiscard]] BitCount total_received() const noexcept;

  /// Max/average over all tags (the paper averages over the full population).
  [[nodiscard]] EnergySummary summarize() const;

  void merge(const EnergyMeter& other);

 private:
  [[nodiscard]] std::size_t checked(TagIndex t) const {
    NETTAG_EXPECTS(t >= 0 && static_cast<std::size_t>(t) < sent_.size(),
                   "tag index out of range");
    return static_cast<std::size_t>(t);
  }

  std::vector<BitCount> sent_;
  std::vector<BitCount> received_;
};

}  // namespace nettag::sim
