// Slot-based execution-time accounting.
//
// The paper measures execution time in slot counts, not seconds (SVI-B.1),
// distinguishing short slots that carry one tag bit (t_s) from long slots
// that carry 96 reader bits (t_id) — e.g. indicator-vector segments and ID
// transmissions.  SlotClock tracks both so benches can report the paper's
// metric (total slots) and, if desired, re-weight by slot length.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace nettag::sim {

/// Accumulates elapsed slots by kind.
class SlotClock {
 public:
  /// Advances by `count` one-bit slots (t_s).
  void add_bit_slots(SlotCount count) {
    NETTAG_EXPECTS(count >= 0, "slot count must be non-negative");
    bit_slots_ += count;
  }

  /// Advances by `count` 96-bit slots (t_id).
  void add_id_slots(SlotCount count) {
    NETTAG_EXPECTS(count >= 0, "slot count must be non-negative");
    id_slots_ += count;
  }

  [[nodiscard]] SlotCount bit_slots() const noexcept { return bit_slots_; }
  [[nodiscard]] SlotCount id_slots() const noexcept { return id_slots_; }

  /// Paper's Fig. 4 metric: every slot counts once regardless of length.
  [[nodiscard]] SlotCount total_slots() const noexcept {
    return bit_slots_ + id_slots_;
  }

  /// Length-weighted time in units of one-bit slots, counting each 96-bit
  /// slot as `id_slot_weight` bit slots (Gen2 leaves the exact ratio open;
  /// SVI-B.1 notes the gap only widens when it is applied).
  [[nodiscard]] double weighted_time(double id_slot_weight) const {
    NETTAG_EXPECTS(id_slot_weight > 0.0, "weight must be positive");
    return static_cast<double>(bit_slots_) +
           id_slot_weight * static_cast<double>(id_slots_);
  }

  void merge(const SlotClock& other) noexcept {
    bit_slots_ += other.bit_slots_;
    id_slots_ += other.id_slots_;
  }

 private:
  SlotCount bit_slots_ = 0;
  SlotCount id_slots_ = 0;
};

}  // namespace nettag::sim
