// Geometric population model of SIV-C (Eqs. 5-10).
//
// For a uniform deployment of density rho, the analysis tracks two tag sets
// around a tier-k tag t:
//   Gamma_i  — tags within i tag-to-tag hops of t: the disk of radius i*r
//              centred on t (at distance r0 = r' + (k-1) r from the reader),
//              clipped to the reader's coverage disk R (Eqs. 6-8);
//   Gamma'_i — tags within i hops of the reader: the disk of radius
//              r' + (i-1) r centred on the reader (Eq. 5).
// The union (Eq. 10) subtracts the lens where the two disks overlap (Eq. 9).
// We compute every case through the exact two-circle intersection area, which
// reproduces the paper's piecewise arccos formulas without case analysis.
#pragma once

#include "common/config.hpp"

namespace nettag::analysis {

/// Expected-population model for one (deployment, tier) pair.
class GeometryModel {
 public:
  /// `tier_count` is K; `tier` is the tag's tier k in [1, K].
  GeometryModel(const SystemConfig& sys, int tier, int tier_count);

  /// |Gamma'_i| of Eq. 5 (0 for i = 0).
  [[nodiscard]] double reader_reach(int i) const;

  /// |Gamma_i| of Eq. 8 (1 for i = 0: the tag itself).
  [[nodiscard]] double tag_reach(int i) const;

  /// |Gamma_i ∪ Gamma'_i| of Eq. 10.
  [[nodiscard]] double union_reach(int i) const;

  /// |Gamma_{i-1} - Gamma_{i-2} - Gamma'_{i-1}|: the tags newly discovered by
  /// t in round i-1 that the indicator vector has not silenced — the mu_i
  /// population of Eq. 12.
  [[nodiscard]] double newly_found(int i) const;

  /// The tag's assumed distance from the reader, r0 = r' + (k-1) r.
  [[nodiscard]] double tag_distance() const noexcept { return r0_; }

 private:
  /// Area of the disk of radius `radius` centred on the tag that lies inside
  /// the reader's coverage (Eqs. 6-7 via the exact lens area).
  [[nodiscard]] double tag_disk_area(double radius) const;

  SystemConfig sys_;
  int tier_;
  double r0_;
};

/// Fraction of the population at tier k under the ring model of SIV-C
/// (tier 1: distance <= r'; tier k: r' + (k-2) r < distance <= r' + (k-1) r,
/// clipped to the deployment disk).
[[nodiscard]] double tier_fraction(const SystemConfig& sys, int tier);

/// Number of tiers implied by the ring model (same as
/// SystemConfig::estimated_tiers, exposed here for symmetry).
[[nodiscard]] int ring_tier_count(const SystemConfig& sys);

}  // namespace nettag::analysis
