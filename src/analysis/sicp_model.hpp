// Analytical cost model of the SICP baseline under the ring geometry.
//
// The paper gives no closed form for SICP; this model completes the
// analysis story so the reconstruction can be sanity-checked without
// simulation.  Under the ring model (tier k holds tier_fraction(k) of the
// tags), the serialized phase is deterministic:
//
//   data hops  = sum_t tier(t)        = n * E[tier]
//   polls      = one per tag          = n
//   time       = (tree build) + data hops + polls        [96-bit slots]
//   avg sent   = 96 * (E[subtree] + E[children] + build messages)
//              = 96 * (E[tier] + 1 + ~build)   since E[subtree] = E[tier]
//
// (E[subtree size] over all tags equals E[tier]: each tag appears in the
// subtree of each of its tier(t) ancestors exactly once.)  The tree-build
// term is contention-dependent; we expose the window arithmetic at the
// configured load so the prediction matches the simulator's settings.
#pragma once

#include "common/config.hpp"
#include "common/types.hpp"

namespace nettag::analysis {

/// Closed-form SICP cost prediction.
struct SicpCosts {
  double expected_tier = 0.0;     ///< E[tier] over the ring model
  double data_hops = 0.0;         ///< n * E[tier]
  double poll_slots = 0.0;        ///< n
  double tree_slots = 0.0;        ///< contention windows + ACKs
  double total_slots = 0.0;       ///< serialized total (96-bit slots)
  double avg_sent_bits = 0.0;     ///< per tag
  double avg_received_bits = 0.0; ///< per tag (overhearing + idle sampling)
};

/// Predicts SICP's cost for the ring-model deployment `sys` with the
/// tree-build contention run at `window_load` transmissions per slot and
/// `beacon_attempts` expected windows per tag per phase.
[[nodiscard]] SicpCosts sicp_cost_model(const SystemConfig& sys,
                                        double window_load = 0.5,
                                        double beacon_attempts = 1.2);

}  // namespace nettag::analysis
