// Eq. (4): expected number of distinct slots picked by n' tags in an f-slot
// frame, chi(n') = f (1 - (1 - 1/f)^{n'}).
#pragma once

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nettag::analysis {

/// chi(n') of Eq. 4; accepts fractional populations (expected counts).
[[nodiscard]] inline double chi(double n_tags, FrameSize f) {
  NETTAG_EXPECTS(f > 0, "frame size must be positive");
  NETTAG_EXPECTS(n_tags >= 0.0, "population must be non-negative");
  const double keep = std::log1p(-1.0 / static_cast<double>(f));
  return static_cast<double>(f) * (1.0 - std::exp(n_tags * keep));
}

}  // namespace nettag::analysis
