#include "analysis/sicp_model.hpp"

#include <cmath>
#include <numbers>

#include "analysis/geometry_model.hpp"
#include "common/error.hpp"

namespace nettag::analysis {

SicpCosts sicp_cost_model(const SystemConfig& sys, double window_load,
                          double beacon_attempts) {
  sys.validate();
  NETTAG_EXPECTS(window_load > 0.0 && window_load <= 1.0,
                 "window load must be in (0,1]");
  NETTAG_EXPECTS(beacon_attempts >= 1.0, "attempts must be >= 1");

  const double n = static_cast<double>(sys.tag_count);
  const int tiers = sys.estimated_tiers();

  SicpCosts costs;
  double tier1_fraction = 0.0;
  for (int k = 1; k <= tiers; ++k) {
    const double w = tier_fraction(sys, k);
    costs.expected_tier += w * static_cast<double>(k);
    if (k == 1) tier1_fraction = w;
  }

  costs.data_hops = n * costs.expected_tier;
  costs.poll_slots = n;

  // Tree build: every tag beacons ~`attempts` windows and registers in
  // ~`attempts` windows, each window sized contenders/load; summed over
  // levels that is ~attempts * n / load slots per phase.  Registration is
  // acknowledged once per tag (serialized 96-bit slots).
  costs.tree_slots = 2.0 * beacon_attempts * n / window_load + n;
  costs.total_slots = costs.tree_slots + costs.data_hops + costs.poll_slots;

  // Per-tag transmissions: subtree payloads (E[subtree] = E[tier]), one
  // poll and one registration-ACK per child (E[children] = 1 - tier-1
  // fraction: every non-tier-1 tag is someone's child), plus the beacon and
  // registration attempts.
  const double children = 1.0 - tier1_fraction;
  const double messages =
      costs.expected_tier + 2.0 * children + 2.0 * beacon_attempts;
  costs.avg_sent_bits = 96.0 * messages;

  // Received: overhearing of every neighbor's transmissions plus 1-bit
  // idle preamble sampling across the serialized schedule.
  const double degree = sys.density() * std::numbers::pi *
                        sys.tag_to_tag_range_m * sys.tag_to_tag_range_m;
  costs.avg_received_bits = degree * costs.avg_sent_bits + costs.total_slots;
  return costs;
}

}  // namespace nettag::analysis
