// Analytical execution-time and energy model of SIV-C (Eqs. 3, 11-13).
//
// Predicts, without simulation, the per-tag slot costs of a CCM-based
// protocol with frame size f and participation p over a uniform deployment:
// GMLE uses p = 1.59 f / n, TRP uses p = 1 (SV-C).  The bench
// `analysis_vs_simulation` compares these predictions with the simulator.
#pragma once

#include "common/config.hpp"
#include "common/types.hpp"

namespace nettag::analysis {

/// Inputs of the cost model.
struct CostModelInput {
  SystemConfig sys;
  FrameSize frame_size = 0;    ///< f
  double participation = 1.0;  ///< p
  int tier_count = 0;          ///< K; 0 = derive from the ring model
};

/// Per-tag predicted costs for a tag at a given tier.
struct TagCost {
  double monitored_slots = 0.0;   ///< first term of Eq. 11
  double indicator_slots = 0.0;   ///< K * ceil(f/96)
  double checking_rx_slots = 0.0; ///< K * L_c
  double frame_tx_slots = 0.0;    ///< Eq. 12 summed over rounds
  double checking_tx_slots = 0.0; ///< <= K (one response per round)

  /// N_r of Eq. 11, in slots.
  [[nodiscard]] double receive_slots() const {
    return monitored_slots + indicator_slots + checking_rx_slots;
  }
  /// N_s of Eq. 13 (with the text's upper bound K for checking responses).
  [[nodiscard]] double send_slots() const {
    return frame_tx_slots + checking_tx_slots;
  }
  /// Received bits: monitored and checking slots carry 1 bit, indicator
  /// segments carry 96.
  [[nodiscard]] double receive_bits() const {
    return monitored_slots + 96.0 * indicator_slots + checking_rx_slots;
  }
  /// Sent bits (every tag transmission is one bit).
  [[nodiscard]] double send_bits() const { return send_slots(); }
};

/// Eq. 3 in slot counts: T = K (f + ceil(f/96) + L_c); `with_requests`
/// additionally counts the per-round request broadcast our simulator issues.
[[nodiscard]] SlotCount execution_time_slots(const CostModelInput& input,
                                             bool with_requests = false);

/// Eqs. 11-13 for a tag at tier `tier`.
[[nodiscard]] TagCost tag_cost(const CostModelInput& input, int tier);

/// Population-average of `tag_cost` weighted by the ring-model tier mix.
[[nodiscard]] TagCost average_tag_cost(const CostModelInput& input);

/// The tier whose predicted cost is largest (proxy for Tables I/II maxima)
/// and its cost.
struct WorstTier {
  int tier = 1;
  TagCost cost;
};
[[nodiscard]] WorstTier worst_tag_cost(const CostModelInput& input,
                                       bool by_send);

}  // namespace nettag::analysis
