#include "analysis/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/chi.hpp"
#include "analysis/geometry_model.hpp"
#include "common/error.hpp"

namespace nettag::analysis {

namespace {

int effective_tier_count(const CostModelInput& input) {
  return input.tier_count > 0 ? input.tier_count
                              : input.sys.estimated_tiers();
}

void validate(const CostModelInput& input) {
  input.sys.validate();
  NETTAG_EXPECTS(input.frame_size > 0, "frame size must be positive");
  NETTAG_EXPECTS(input.participation > 0.0 && input.participation <= 1.0,
                 "participation must be in (0,1]");
}

}  // namespace

SlotCount execution_time_slots(const CostModelInput& input,
                               bool with_requests) {
  validate(input);
  const auto k = static_cast<SlotCount>(effective_tier_count(input));
  const auto f = static_cast<SlotCount>(input.frame_size);
  const SlotCount indicator = (f + 95) / 96;
  const auto lc = static_cast<SlotCount>(input.sys.checking_frame_length());
  const SlotCount request = with_requests ? 1 : 0;
  return k * (f + indicator + lc + request);
}

TagCost tag_cost(const CostModelInput& input, int tier) {
  validate(input);
  const int k_total = effective_tier_count(input);
  NETTAG_EXPECTS(tier >= 1 && tier <= k_total, "tier out of range");
  const GeometryModel geo(input.sys, tier, k_total);
  const double f = static_cast<double>(input.frame_size);
  const double p = input.participation;

  TagCost cost;
  // Eq. 11, first term: in round i (i = 1..K) the tag monitors the slots not
  // already accounted to Gamma_{i-1} u Gamma'_{i-1}; the expected number of
  // busy slots among the p-sampled union is chi(p * |union|), so the idle
  // remainder is f - chi(...).  (For i = 1 the union is {t} itself.)
  const int k_rounds = k_total;
  for (int i = 0; i < k_rounds; ++i) {
    const double known = chi(p * geo.union_reach(i), input.frame_size);
    cost.monitored_slots += f - known;
  }
  cost.indicator_slots =
      static_cast<double>(k_rounds) *
      std::ceil(f / 96.0);
  cost.checking_rx_slots =
      static_cast<double>(k_rounds) *
      static_cast<double>(input.sys.checking_frame_length());

  // Eq. 12: first-round own pick (probability p), then relays of the slots
  // newly heard that neither the tag nor the indicator vector has served.
  cost.frame_tx_slots = p;
  for (int i = 2; i <= k_rounds; ++i) {
    const double mu = p * geo.newly_found(i);
    const double already =
        chi(p * geo.union_reach(i - 1), input.frame_size) / f;
    cost.frame_tx_slots += chi(mu, input.frame_size) * (1.0 - already);
  }
  // Checking frame: at most one 1-bit response per round (SIV-C text).
  cost.checking_tx_slots = static_cast<double>(k_rounds);
  return cost;
}

TagCost average_tag_cost(const CostModelInput& input) {
  validate(input);
  const int k_total = effective_tier_count(input);
  TagCost avg;
  double weight_sum = 0.0;
  for (int tier = 1; tier <= k_total; ++tier) {
    const double w = tier_fraction(input.sys, tier);
    if (w <= 0.0) continue;
    const TagCost c = tag_cost(input, tier);
    avg.monitored_slots += w * c.monitored_slots;
    avg.indicator_slots += w * c.indicator_slots;
    avg.checking_rx_slots += w * c.checking_rx_slots;
    avg.frame_tx_slots += w * c.frame_tx_slots;
    avg.checking_tx_slots += w * c.checking_tx_slots;
    // Fixed tier order: serial weighted fold over the tier sweep.
    weight_sum += w;  // nettag-lint: allow(float-for-accum)
  }
  NETTAG_ASSERT(weight_sum > 0.0, "ring model produced no tiers");
  avg.monitored_slots /= weight_sum;
  avg.indicator_slots /= weight_sum;
  avg.checking_rx_slots /= weight_sum;
  avg.frame_tx_slots /= weight_sum;
  avg.checking_tx_slots /= weight_sum;
  return avg;
}

WorstTier worst_tag_cost(const CostModelInput& input, bool by_send) {
  validate(input);
  const int k_total = effective_tier_count(input);
  WorstTier worst;
  worst.tier = 1;
  worst.cost = tag_cost(input, 1);
  for (int tier = 2; tier <= k_total; ++tier) {
    const TagCost c = tag_cost(input, tier);
    const double value = by_send ? c.send_bits() : c.receive_bits();
    const double best = by_send ? worst.cost.send_bits()
                                : worst.cost.receive_bits();
    if (value > best) {
      worst.tier = tier;
      worst.cost = c;
    }
  }
  return worst;
}

}  // namespace nettag::analysis
