#include "analysis/geometry_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "geom/circle_math.hpp"

namespace nettag::analysis {

GeometryModel::GeometryModel(const SystemConfig& sys, int tier,
                             int tier_count)
    : sys_(sys), tier_(tier) {
  sys_.validate();
  NETTAG_EXPECTS(tier >= 1, "tier must be >= 1");
  NETTAG_EXPECTS(tier_count >= tier, "tier beyond tier count");
  r0_ = sys_.tag_to_reader_range_m +
        static_cast<double>(tier - 1) * sys_.tag_to_tag_range_m;
  // A representative tier-K tag may sit slightly outside the nominal ring
  // when the deployment disk truncates the last ring; clamp to the disk.
  r0_ = std::min(r0_, sys_.disk_radius_m);
}

double GeometryModel::reader_reach(int i) const {
  NETTAG_EXPECTS(i >= 0, "hop count must be non-negative");
  if (i == 0) return 0.0;  // Gamma'_0 = empty set
  const double radius = sys_.tag_to_reader_range_m +
                        static_cast<double>(i - 1) * sys_.tag_to_tag_range_m;
  const double clipped = std::min(radius, sys_.disk_radius_m);
  return sys_.density() * std::numbers::pi * clipped * clipped;
}

double GeometryModel::tag_disk_area(double radius) const {
  // Tags exist only inside the deployment disk (radius = disk_radius, which
  // the paper sets equal to R); Eq. 6's clipping is exactly the lens of the
  // tag-centred disk with the coverage disk.
  return geom::circle_intersection_area(radius, sys_.disk_radius_m, r0_);
}

double GeometryModel::tag_reach(int i) const {
  NETTAG_EXPECTS(i >= 0, "hop count must be non-negative");
  if (i == 0) return 1.0;  // Gamma_0 = { t }
  const double radius = static_cast<double>(i) * sys_.tag_to_tag_range_m;
  return sys_.density() * tag_disk_area(radius);
}

double GeometryModel::union_reach(int i) const {
  NETTAG_EXPECTS(i >= 0, "hop count must be non-negative");
  if (i == 0) return tag_reach(0);
  const double tag_radius = static_cast<double>(i) * sys_.tag_to_tag_range_m;
  const double reader_radius =
      std::min(sys_.tag_to_reader_range_m +
                   static_cast<double>(i - 1) * sys_.tag_to_tag_range_m,
               sys_.disk_radius_m);
  // Eq. 9's overlap zone S'_i: the lens of the two disks.  The reader disk
  // lies inside the deployment disk, so no further clipping is needed.
  const double overlap =
      geom::circle_intersection_area(tag_radius, reader_radius, r0_);
  const double total = tag_reach(i) + reader_reach(i) -
                       sys_.density() * overlap;
  return std::clamp(total, 0.0, static_cast<double>(sys_.tag_count));
}

double GeometryModel::newly_found(int i) const {
  NETTAG_EXPECTS(i >= 2, "newly_found is defined for rounds i >= 2");
  const double r = sys_.tag_to_tag_range_m;
  const double inner = static_cast<double>(i - 2) * r;
  const double outer = static_cast<double>(i - 1) * r;
  // Annulus of the tag-centred disk between hops i-2 and i-1 (R-clipped) ...
  const double annulus = tag_disk_area(outer) - tag_disk_area(inner);
  // ... minus its part inside Gamma'_{i-1} (reader disk radius r'+(i-2)r).
  const double reader_radius =
      std::min(sys_.tag_to_reader_range_m + static_cast<double>(i - 2) * r,
               sys_.disk_radius_m);
  const double overlap_outer =
      geom::circle_intersection_area(outer, reader_radius, r0_);
  const double overlap_inner =
      inner > 0.0
          ? geom::circle_intersection_area(inner, reader_radius, r0_)
          : 0.0;
  const double area = annulus - (overlap_outer - overlap_inner);
  return std::max(0.0, sys_.density() * area);
}

double tier_fraction(const SystemConfig& sys, int tier) {
  sys.validate();
  NETTAG_EXPECTS(tier >= 1, "tier must be >= 1");
  const double disk = sys.disk_radius_m;
  const double inner =
      tier == 1 ? 0.0
                : std::min(sys.tag_to_reader_range_m +
                               static_cast<double>(tier - 2) *
                                   sys.tag_to_tag_range_m,
                           disk);
  const double outer =
      std::min(sys.tag_to_reader_range_m +
                   static_cast<double>(tier - 1) * sys.tag_to_tag_range_m,
               disk);
  if (outer <= inner) return 0.0;
  return (outer * outer - inner * inner) / (disk * disk);
}

int ring_tier_count(const SystemConfig& sys) { return sys.estimated_tiers(); }

}  // namespace nettag::analysis
