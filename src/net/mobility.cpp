#include "net/mobility.hpp"

#include <algorithm>
#include <cstdint>

#include "common/error.hpp"
#include "geom/disk.hpp"
#include "net/topology.hpp"

namespace nettag::net {

Deployment move_tags(const Deployment& deployment, const MobilityModel& model,
                     Rng& rng) {
  NETTAG_EXPECTS(model.move_fraction >= 0.0 && model.move_fraction <= 1.0,
                 "move fraction must be in [0,1]");
  NETTAG_EXPECTS(model.max_step_m >= 0.0, "step must be non-negative");
  NETTAG_EXPECTS(model.region_radius_m > 0.0, "region must be positive");

  Deployment moved = deployment;
  for (auto& position : moved.positions) {
    if (!rng.bernoulli(model.move_fraction)) continue;
    // Re-draw until the step lands inside the region (rejection; the step
    // is small relative to the region so this terminates fast).
    for (int attempt = 0; attempt < 64; ++attempt) {
      const geom::Point candidate =
          geom::sample_disk(rng, position, model.max_step_m);
      if (geom::norm(candidate) <= model.region_radius_m) {
        position = candidate;
        break;
      }
    }
  }
  return moved;
}

double link_churn(const Deployment& before, const Deployment& after,
                  const SystemConfig& cfg) {
  NETTAG_EXPECTS(before.ids == after.ids,
                 "link churn requires the same tag set");
  const Topology a(before, cfg);
  const Topology b(after, cfg);

  std::int64_t common = 0;
  std::int64_t total_a = 0;
  std::int64_t total_b = 0;
  for (TagIndex t = 0; t < a.tag_count(); ++t) {
    const auto na = a.neighbors(t);
    const auto nb = b.neighbors(t);
    total_a += static_cast<std::int64_t>(na.size());
    total_b += static_cast<std::int64_t>(nb.size());
    // Both lists are sorted: count the intersection linearly.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na.size() && j < nb.size()) {
      if (na[i] == nb[j]) {
        ++common;
        ++i;
        ++j;
      } else if (na[i] < nb[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  const std::int64_t unions = total_a + total_b - common;
  if (unions == 0) return 0.0;
  return 1.0 - static_cast<double>(common) / static_cast<double>(unions);
}

}  // namespace nettag::net
