// Irregular radio links: log-distance path loss with log-normal shadowing.
//
// The paper's model is a unit disk ("as long as t can sense transmissions
// by t', the latter is a neighbor" — SII deliberately abstracts the radio).
// Real links are irregular.  This builder replaces the disk with the
// standard log-distance + shadowing model: the link budget is exhausted on
// average at `reference_range_m`, and a zero-mean Gaussian shadowing term
// (sigma dB) makes links probabilistic in the transition region:
//
//   link(u,v)  <=>  10 * eta * log10(d/ref) <= X_{uv},
//   X_{uv} ~ N(0, sigma^2),  drawn once per PAIR (symmetric, stable).
//
// sigma = 0 recovers the disk model exactly.  CCM itself never looks at
// geometry — Theorem 1 holds on any connected graph — so this module is how
// the repository demonstrates that the paper's results survive radio
// irregularity (bench/irregular_radio).
#pragma once

#include "common/config.hpp"
#include "common/types.hpp"
#include "net/deployment.hpp"
#include "net/topology.hpp"

namespace nettag::net {

/// Parameters of the shadowed link model.
struct RadioModel {
  /// Path-loss exponent eta (2 free space .. 4 cluttered indoor).
  double path_loss_exponent = 3.0;

  /// Shadowing standard deviation, dB.  0 = pure disk model.
  double shadowing_sigma_db = 4.0;

  /// Distance at which the tag-to-tag link budget is exhausted on average
  /// (the disk model's r).
  double reference_range_m = 6.0;

  /// Links are never evaluated beyond this multiple of the reference range
  /// (keeps neighbor queries bounded; at 2x the link probability is already
  /// < Q(3 eta / sigma), negligible for sane parameters).
  double max_range_factor = 2.0;

  /// Seed for the per-pair shadowing draws (deterministic, symmetric).
  Seed shadowing_seed = 0x5ad0;

  void validate() const;

  /// P(link exists | distance d): Q(10 eta log10(d/ref) / sigma).
  [[nodiscard]] double link_probability(double distance_m) const;
};

/// Builds the topology of `deployment` under the shadowed link model.
/// Reader relations (hears within r', covers within R) stay deterministic —
/// the reader is engineered infrastructure with margin to spare.
[[nodiscard]] Topology build_shadowed_topology(const Deployment& deployment,
                                               const SystemConfig& sys,
                                               const RadioModel& model);

}  // namespace nettag::net
