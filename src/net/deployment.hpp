// Physical deployment generation.
//
// A Deployment is the ground truth of one trial: tag IDs, tag positions, and
// reader positions.  The paper's evaluation (SVI-A) places one reader at the
// centre of a 30 m disk with 10,000 uniformly scattered tags; helpers also
// support multi-reader layouts (SIII-G) and removing tags to stage
// missing-tag events (SV).
#pragma once

#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "geom/point.hpp"

namespace nettag::net {

/// Tag IDs and positions plus reader positions for one trial.
struct Deployment {
  std::vector<TagId> ids;             ///< unique 64-bit IDs, one per tag
  std::vector<geom::Point> positions; ///< tag positions, same order as ids
  std::vector<geom::Point> readers;   ///< reader positions (>= 1)

  [[nodiscard]] int tag_count() const noexcept {
    return static_cast<int>(ids.size());
  }

  /// Removes the tags at the given dense indices (missing-tag scenario).
  /// Indices must be valid and are deduplicated internally.
  void remove_tags(std::vector<TagIndex> indices);
};

/// Uniform-disk deployment per the paper's setting: reader at the origin,
/// `cfg.tag_count` tags uniform in the disk of `cfg.disk_radius_m`.
[[nodiscard]] Deployment make_disk_deployment(const SystemConfig& cfg,
                                              Rng& rng);

/// Multi-reader variant: `reader_count` readers evenly spaced on a circle of
/// radius `reader_ring_radius_m` around the origin (plus one at the centre
/// when `include_center`), tags uniform in the disk.
[[nodiscard]] Deployment make_multi_reader_deployment(
    const SystemConfig& cfg, Rng& rng, int reader_count,
    double reader_ring_radius_m, bool include_center);

/// Draws `count` distinct random tag IDs.
[[nodiscard]] std::vector<TagId> make_tag_ids(Rng& rng, int count);

/// Clustered deployment: tags arrive in pallets.  `cluster_count` cluster
/// centres uniform in the disk; each tag joins a random cluster and lands
/// Gaussian-ish (uniform disk of `cluster_radius_m`) around its centre,
/// clamped into the deployment disk.  Models goods stacked in piles — the
/// situation the paper's introduction gives for readers failing to reach
/// every tag.
[[nodiscard]] Deployment make_clustered_deployment(const SystemConfig& cfg,
                                                   Rng& rng,
                                                   int cluster_count,
                                                   double cluster_radius_m);

/// Aisle deployment: tags on parallel shelf rows.  `aisle_count` rows span
/// the disk horizontally, `row_spacing_m` apart and centred vertically;
/// tags scatter uniformly along their row with `row_width_m` of lateral
/// jitter.  Connectivity across rows exists only where r exceeds the
/// spacing — the worst case for relay depth.
[[nodiscard]] Deployment make_aisle_deployment(const SystemConfig& cfg,
                                               Rng& rng, int aisle_count,
                                               double row_width_m);

}  // namespace nettag::net
