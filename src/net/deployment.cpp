#include "net/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "common/error.hpp"
#include "geom/disk.hpp"

namespace nettag::net {

void Deployment::remove_tags(std::vector<TagIndex> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  NETTAG_EXPECTS(indices.empty() ||
                     (indices.front() >= 0 && indices.back() < tag_count()),
                 "tag index out of range");
  std::vector<TagId> kept_ids;
  std::vector<geom::Point> kept_pos;
  kept_ids.reserve(ids.size() - indices.size());
  kept_pos.reserve(ids.size() - indices.size());
  std::size_t next_removed = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (next_removed < indices.size() &&
        static_cast<TagIndex>(i) == indices[next_removed]) {
      ++next_removed;
      continue;
    }
    kept_ids.push_back(ids[i]);
    kept_pos.push_back(positions[i]);
  }
  ids = std::move(kept_ids);
  positions = std::move(kept_pos);
}

std::vector<TagId> make_tag_ids(Rng& rng, int count) {
  NETTAG_EXPECTS(count >= 0, "count must be non-negative");
  std::unordered_set<TagId> seen;
  seen.reserve(static_cast<std::size_t>(count) * 2);
  std::vector<TagId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  while (static_cast<int>(ids.size()) < count) {
    const TagId id = rng();
    if (id != 0 && seen.insert(id).second) ids.push_back(id);
  }
  return ids;
}

Deployment make_disk_deployment(const SystemConfig& cfg, Rng& rng) {
  cfg.validate();
  Deployment d;
  d.readers = {geom::Point{0.0, 0.0}};
  d.ids = make_tag_ids(rng, cfg.tag_count);
  d.positions = geom::sample_disk_points(rng, {0.0, 0.0}, cfg.disk_radius_m,
                                         cfg.tag_count);
  return d;
}

Deployment make_clustered_deployment(const SystemConfig& cfg, Rng& rng,
                                     int cluster_count,
                                     double cluster_radius_m) {
  cfg.validate();
  NETTAG_EXPECTS(cluster_count >= 1, "need at least one cluster");
  NETTAG_EXPECTS(cluster_radius_m > 0.0, "cluster radius must be positive");
  Deployment d;
  d.readers = {geom::Point{0.0, 0.0}};
  d.ids = make_tag_ids(rng, cfg.tag_count);

  std::vector<geom::Point> centers;
  centers.reserve(static_cast<std::size_t>(cluster_count));
  for (int c = 0; c < cluster_count; ++c)
    centers.push_back(geom::sample_disk(rng, {0.0, 0.0},
                                        cfg.disk_radius_m - cluster_radius_m));

  d.positions.reserve(static_cast<std::size_t>(cfg.tag_count));
  for (int i = 0; i < cfg.tag_count; ++i) {
    const auto c = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(cluster_count)));
    geom::Point p = geom::sample_disk(rng, centers[c], cluster_radius_m);
    // Clamp stragglers back into the deployment disk.
    const double norm = geom::norm(p);
    if (norm > cfg.disk_radius_m) p = p * (cfg.disk_radius_m / norm);
    d.positions.push_back(p);
  }
  return d;
}

Deployment make_aisle_deployment(const SystemConfig& cfg, Rng& rng,
                                 int aisle_count, double row_width_m) {
  cfg.validate();
  NETTAG_EXPECTS(aisle_count >= 1, "need at least one aisle");
  NETTAG_EXPECTS(row_width_m >= 0.0, "row width must be non-negative");
  Deployment d;
  d.readers = {geom::Point{0.0, 0.0}};
  d.ids = make_tag_ids(rng, cfg.tag_count);

  const double radius = cfg.disk_radius_m;
  const double spacing =
      2.0 * radius / static_cast<double>(aisle_count + 1);
  d.positions.reserve(static_cast<std::size_t>(cfg.tag_count));
  for (int i = 0; i < cfg.tag_count; ++i) {
    const auto row = static_cast<double>(
        rng.below(static_cast<std::uint64_t>(aisle_count)));
    const double y = -radius + (row + 1.0) * spacing +
                     rng.uniform(-row_width_m / 2.0, row_width_m / 2.0);
    // x spans the chord of the disk at height y.
    const double half_chord =
        std::sqrt(std::max(0.0, radius * radius - y * y));
    const double x = rng.uniform(-half_chord, half_chord);
    d.positions.push_back({x, y});
  }
  return d;
}

Deployment make_multi_reader_deployment(const SystemConfig& cfg, Rng& rng,
                                        int reader_count,
                                        double reader_ring_radius_m,
                                        bool include_center) {
  cfg.validate();
  NETTAG_EXPECTS(reader_count >= 1, "need at least one reader");
  NETTAG_EXPECTS(reader_ring_radius_m >= 0.0, "ring radius must be >= 0");
  Deployment d;
  if (include_center) d.readers.push_back({0.0, 0.0});
  for (int i = 0; i < reader_count; ++i) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(i) /
        static_cast<double>(reader_count);
    d.readers.push_back({reader_ring_radius_m * std::cos(theta),
                         reader_ring_radius_m * std::sin(theta)});
  }
  d.ids = make_tag_ids(rng, cfg.tag_count);
  d.positions = geom::sample_disk_points(rng, {0.0, 0.0}, cfg.disk_radius_m,
                                         cfg.tag_count);
  return d;
}

}  // namespace nettag::net
