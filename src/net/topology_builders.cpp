#include "net/topology_builders.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace nettag::net {

namespace {

std::vector<TagId> sequential_ids(int n) {
  std::vector<TagId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids.push_back(static_cast<TagId>(i) + 1000);
  return ids;
}

void add_edge(std::vector<std::vector<TagIndex>>& adj, TagIndex a,
              TagIndex b) {
  if (a == b) return;
  auto& la = adj[static_cast<std::size_t>(a)];
  if (std::find(la.begin(), la.end(), b) != la.end()) return;
  la.push_back(b);
  adj[static_cast<std::size_t>(b)].push_back(a);
}

Topology finish(int n, std::vector<std::vector<TagIndex>> adj,
                std::vector<bool> hears) {
  for (auto& list : adj) std::sort(list.begin(), list.end());
  return Topology(sequential_ids(n), adj, std::move(hears), {});
}

}  // namespace

Topology make_line(int n) {
  NETTAG_EXPECTS(n >= 1, "line needs at least one tag");
  std::vector<std::vector<TagIndex>> adj(static_cast<std::size_t>(n));
  for (TagIndex t = 0; t + 1 < n; ++t) add_edge(adj, t, t + 1);
  std::vector<bool> hears(static_cast<std::size_t>(n), false);
  hears[0] = true;
  return finish(n, std::move(adj), std::move(hears));
}

Topology make_star(int n) {
  NETTAG_EXPECTS(n >= 1, "star needs at least one tag");
  std::vector<std::vector<TagIndex>> adj(static_cast<std::size_t>(n));
  std::vector<bool> hears(static_cast<std::size_t>(n), true);
  return finish(n, std::move(adj), std::move(hears));
}

Topology make_ring(int n, int gateway_count) {
  NETTAG_EXPECTS(n >= 3, "ring needs at least three tags");
  NETTAG_EXPECTS(gateway_count >= 1 && gateway_count <= n,
                 "gateway count out of range");
  std::vector<std::vector<TagIndex>> adj(static_cast<std::size_t>(n));
  for (TagIndex t = 0; t < n; ++t) add_edge(adj, t, (t + 1) % n);
  std::vector<bool> hears(static_cast<std::size_t>(n), false);
  for (int g = 0; g < gateway_count; ++g)
    hears[static_cast<std::size_t>(g)] = true;
  return finish(n, std::move(adj), std::move(hears));
}

Topology make_layered(int tiers, int width) {
  NETTAG_EXPECTS(tiers >= 1 && width >= 1, "layered needs tiers,width >= 1");
  const int n = tiers * width;
  std::vector<std::vector<TagIndex>> adj(static_cast<std::size_t>(n));
  auto node = [width](int layer, int i) {
    return static_cast<TagIndex>(layer * width + i);
  };
  for (int layer = 0; layer + 1 < tiers; ++layer) {
    for (int i = 0; i < width; ++i) {
      for (int j = 0; j < width; ++j)
        add_edge(adj, node(layer, i), node(layer + 1, j));
    }
  }
  // Link tags within each layer too (they can hear each other).
  for (int layer = 0; layer < tiers; ++layer) {
    for (int i = 0; i < width; ++i) {
      for (int j = i + 1; j < width; ++j)
        add_edge(adj, node(layer, i), node(layer, j));
    }
  }
  std::vector<bool> hears(static_cast<std::size_t>(n), false);
  for (int i = 0; i < width; ++i) hears[static_cast<std::size_t>(node(0, i))] = true;
  return finish(n, std::move(adj), std::move(hears));
}

Topology make_binary_tree(int depth) {
  NETTAG_EXPECTS(depth >= 1, "tree needs depth >= 1");
  const int n = (1 << depth) - 1;
  std::vector<std::vector<TagIndex>> adj(static_cast<std::size_t>(n));
  for (TagIndex t = 0; t < n; ++t) {
    const TagIndex left = 2 * t + 1;
    const TagIndex right = 2 * t + 2;
    if (left < n) add_edge(adj, t, left);
    if (right < n) add_edge(adj, t, right);
  }
  std::vector<bool> hears(static_cast<std::size_t>(n), false);
  hears[0] = true;
  return finish(n, std::move(adj), std::move(hears));
}

Topology make_random_connected(int n, int extra_edges, int gateway_count,
                               Rng& rng) {
  NETTAG_EXPECTS(n >= 1, "need at least one tag");
  NETTAG_EXPECTS(gateway_count >= 1 && gateway_count <= n,
                 "gateway count out of range");
  NETTAG_EXPECTS(extra_edges >= 0, "extra edges must be >= 0");
  std::vector<std::vector<TagIndex>> adj(static_cast<std::size_t>(n));
  // Uniform random recursive tree keeps the graph connected.
  for (TagIndex t = 1; t < n; ++t)
    add_edge(adj, t, static_cast<TagIndex>(rng.below(static_cast<std::uint64_t>(t))));
  for (int e = 0; e < extra_edges && n >= 2; ++e) {
    const auto a = static_cast<TagIndex>(rng.below(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<TagIndex>(rng.below(static_cast<std::uint64_t>(n)));
    add_edge(adj, a, b);
  }
  std::vector<bool> hears(static_cast<std::size_t>(n), false);
  // Tag 0 is always a gateway so the whole tree is reachable.
  hears[0] = true;
  int placed = 1;
  while (placed < gateway_count) {
    const auto g = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(n)));
    if (!hears[g]) {
      hears[g] = true;
      ++placed;
    }
  }
  for (auto& list : adj) std::sort(list.begin(), list.end());
  std::vector<TagId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    ids.push_back(fmix64(static_cast<TagId>(i) + 7'777));
  return Topology(std::move(ids), adj, std::move(hears), {});
}

}  // namespace nettag::net
