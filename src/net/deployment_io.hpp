// Deployment persistence.
//
// Trials are deterministic from a seed, but real studies also want to pin
// a deployment down as an artifact (share the exact network a result came
// from, re-run a different protocol on it, feed a measured floor plan in).
// The format is a minimal line-oriented text file:
//
//   nettag-deployment v1
//   readers <count>
//   <x> <y>                 (one line per reader)
//   tags <count>
//   <id-hex> <x> <y>        (one line per tag)
#pragma once

#include <iosfwd>
#include <string>

#include "net/deployment.hpp"

namespace nettag::net {

/// Writes `deployment` to `out`; throws nettag::Error on stream failure.
void save_deployment(std::ostream& out, const Deployment& deployment);

/// Parses a deployment; throws nettag::Error on malformed input.
[[nodiscard]] Deployment load_deployment(std::istream& in);

/// File convenience wrappers.
void save_deployment_file(const std::string& path,
                          const Deployment& deployment);
[[nodiscard]] Deployment load_deployment_file(const std::string& path);

}  // namespace nettag::net
