// Hand-crafted topologies with known tier structure.
//
// The CCM invariants (Theorem 1, tier-by-tier convergence, termination) are
// easiest to pin down on topologies whose shape is exact rather than sampled.
// Every builder returns a Topology whose reader hears precisely the declared
// tier-1 tags; reader broadcast coverage is total, as in the paper.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"

namespace nettag::net {

/// A chain: reader - t0 - t1 - ... - t(n-1).  Tag k sits at tier k+1; the
/// deepest topology per tag count (worst case for round count).
[[nodiscard]] Topology make_line(int n);

/// A star: every tag heard directly by the reader (single-tier; the
/// "traditional RFID system" of Theorem 1's right-hand side).
[[nodiscard]] Topology make_star(int n);

/// A ring of n tags where `gateway_count` consecutive tags are heard by the
/// reader; tiers grow away from the gateways on both arcs.
[[nodiscard]] Topology make_ring(int n, int gateway_count);

/// `tiers` fully-connected layers of `width` tags each; layer j is fully
/// linked to layer j+1, layer 0 is heard by the reader.  Gives exact tier
/// = layer + 1 with heavy redundancy (stress for duplicate suppression).
[[nodiscard]] Topology make_layered(int tiers, int width);

/// Complete binary tree of `depth` levels (root heard by the reader); tier of
/// a node = its level + 1.  Unbalanced relay load (stress for max-vs-avg).
[[nodiscard]] Topology make_binary_tree(int depth);

/// Random connected topology: n tags, each wired to a uniformly chosen
/// earlier tag plus `extra_edges` random chords; `gateway_count` random tags
/// are heard by the reader.  For property sweeps over irregular shapes.
[[nodiscard]] Topology make_random_connected(int n, int extra_edges,
                                             int gateway_count, Rng& rng);

}  // namespace nettag::net
