#include "net/topology.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "geom/grid_index.hpp"

namespace nettag::net {

Topology::Topology(const Deployment& deployment, const SystemConfig& cfg,
                   int reader_index) {
  cfg.validate();
  NETTAG_EXPECTS(reader_index >= 0 &&
                     reader_index < static_cast<int>(deployment.readers.size()),
                 "reader index out of range");
  NETTAG_EXPECTS(deployment.ids.size() == deployment.positions.size(),
                 "deployment ids/positions size mismatch");
  ids_ = deployment.ids;
  const int n = tag_count();
  const geom::Point reader = deployment.readers[static_cast<std::size_t>(reader_index)];

  const geom::GridIndex index(deployment.positions, cfg.tag_to_tag_range_m);
  std::vector<std::vector<TagIndex>> adjacency(static_cast<std::size_t>(n));
  for (TagIndex t = 0; t < n; ++t) {
    index.for_each_in_range(
        deployment.positions[static_cast<std::size_t>(t)],
        cfg.tag_to_tag_range_m, t, [&adjacency, t](TagIndex other) {
          adjacency[static_cast<std::size_t>(t)].push_back(other);
        });
    auto& list = adjacency[static_cast<std::size_t>(t)];
    std::sort(list.begin(), list.end());
  }
  build_from_adjacency(adjacency);

  reader_hears_.assign(static_cast<std::size_t>(n), false);
  reader_covers_.assign(static_cast<std::size_t>(n), false);
  const double hear_sq =
      cfg.tag_to_reader_range_m * cfg.tag_to_reader_range_m;
  const double cover_sq =
      cfg.reader_to_tag_range_m * cfg.reader_to_tag_range_m;
  for (TagIndex t = 0; t < n; ++t) {
    const double d_sq =
        geom::distance_sq(deployment.positions[static_cast<std::size_t>(t)], reader);
    reader_hears_[static_cast<std::size_t>(t)] = d_sq <= hear_sq;
    reader_covers_[static_cast<std::size_t>(t)] = d_sq <= cover_sq;
  }
  compute_tiers();
}

Topology::Topology(std::vector<TagId> ids,
                   const std::vector<std::vector<TagIndex>>& adjacency,
                   std::vector<bool> reader_hears,
                   std::vector<bool> reader_covers)
    : ids_(std::move(ids)),
      reader_hears_(std::move(reader_hears)),
      reader_covers_(std::move(reader_covers)) {
  const auto n = ids_.size();
  NETTAG_EXPECTS(adjacency.size() == n, "adjacency size mismatch");
  NETTAG_EXPECTS(reader_hears_.size() == n, "reader_hears size mismatch");
  if (reader_covers_.empty()) reader_covers_.assign(n, true);
  NETTAG_EXPECTS(reader_covers_.size() == n, "reader_covers size mismatch");
  // Validate symmetry: a sensing link under one uniform range is mutual.
  for (std::size_t t = 0; t < n; ++t) {
    for (const TagIndex u : adjacency[t]) {
      NETTAG_EXPECTS(u >= 0 && static_cast<std::size_t>(u) < n,
                     "neighbor index out of range");
      NETTAG_EXPECTS(static_cast<std::size_t>(u) != t,
                     "self-loop in adjacency");
      const auto& back = adjacency[static_cast<std::size_t>(u)];
      NETTAG_EXPECTS(
          std::find(back.begin(), back.end(), static_cast<TagIndex>(t)) !=
              back.end(),
          "tag-to-tag adjacency must be symmetric");
    }
  }
  build_from_adjacency(adjacency);
  compute_tiers();
}

void Topology::build_from_adjacency(
    const std::vector<std::vector<TagIndex>>& adjacency) {
  const std::size_t n = ids_.size();
  neighbor_starts_.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t t = 0; t < n; ++t) {
    total += adjacency[t].size();
    neighbor_starts_[t + 1] = total;
  }
  neighbor_data_.reserve(total);
  neighbor_data_.clear();
  for (std::size_t t = 0; t < n; ++t)
    neighbor_data_.insert(neighbor_data_.end(), adjacency[t].begin(),
                          adjacency[t].end());
}

void Topology::compute_tiers() {
  const int n = tag_count();
  tiers_.assign(static_cast<std::size_t>(n), kUnreachable);
  std::deque<TagIndex> queue;
  for (TagIndex t = 0; t < n; ++t) {
    if (reader_hears_[static_cast<std::size_t>(t)]) {
      tiers_[static_cast<std::size_t>(t)] = 1;
      queue.push_back(t);
    }
  }
  reachable_count_ = static_cast<int>(queue.size());
  tier_count_ = queue.empty() ? 0 : 1;
  while (!queue.empty()) {
    const TagIndex t = queue.front();
    queue.pop_front();
    const int next_tier = tiers_[static_cast<std::size_t>(t)] + 1;
    for (const TagIndex u : neighbors(t)) {
      if (tiers_[static_cast<std::size_t>(u)] != kUnreachable) continue;
      tiers_[static_cast<std::size_t>(u)] = next_tier;
      tier_count_ = std::max(tier_count_, next_tier);
      ++reachable_count_;
      queue.push_back(u);
    }
  }
}

std::vector<TagIndex> Topology::tags_at_tier(int k) const {
  std::vector<TagIndex> out;
  for (TagIndex t = 0; t < tag_count(); ++t) {
    if (tiers_[static_cast<std::size_t>(t)] == k) out.push_back(t);
  }
  return out;
}

std::int64_t Topology::total_hops() const noexcept {
  std::int64_t total = 0;
  for (const int k : tiers_) {
    if (k != kUnreachable) total += k;
  }
  return total;
}

Deployment connected_subset(const Deployment& deployment,
                            const SystemConfig& cfg, int reader_index) {
  const Topology topo(deployment, cfg, reader_index);
  Deployment out;
  out.readers = deployment.readers;
  for (TagIndex t = 0; t < topo.tag_count(); ++t) {
    if (topo.tier(t) == kUnreachable) continue;
    out.ids.push_back(deployment.ids[static_cast<std::size_t>(t)]);
    out.positions.push_back(deployment.positions[static_cast<std::size_t>(t)]);
  }
  return out;
}

}  // namespace nettag::net
