// Inter-operation tag mobility.
//
// The system model (SII) fixes tags during an operation but lets them move
// between operations — the very reason the paper argues for STATE-FREE
// tags: any neighbor table or routing tree built yesterday is stale today,
// while CCM needs nothing carried over.  These helpers perturb a deployment
// between operations; tests and benches verify protocols run unchanged on
// the moved network (and that the stateful SICP tree must be rebuilt).
#pragma once

#include "common/rng.hpp"
#include "net/deployment.hpp"

namespace nettag::net {

/// How tags move between two operations.
struct MobilityModel {
  /// Fraction of tags that move at all (forklifts move pallets; most stay).
  double move_fraction = 0.2;

  /// Maximum displacement of a moving tag, metres (uniform in the disk of
  /// this radius around its old position).
  double max_step_m = 5.0;

  /// Tags never leave the deployment region (re-sampled into it).
  double region_radius_m = 30.0;
};

/// Returns a copy of `deployment` with tags displaced per `model`.
/// IDs and readers are unchanged; only positions move.
[[nodiscard]] Deployment move_tags(const Deployment& deployment,
                                   const MobilityModel& model, Rng& rng);

/// Fraction of tag-to-tag links that differ between the topologies implied
/// by two deployments of the SAME tag set under `cfg` (Jaccard distance of
/// the edge sets).  Quantifies how much state a stateful design would have
/// had to repair.
[[nodiscard]] double link_churn(const Deployment& before,
                                const Deployment& after,
                                const SystemConfig& cfg);

}  // namespace nettag::net
