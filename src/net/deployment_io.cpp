#include "net/deployment_io.hpp"

#include <fstream>
#include <iomanip>
#include <ios>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace nettag::net {

namespace {
constexpr const char* kMagic = "nettag-deployment v1";
}

void save_deployment(std::ostream& out, const Deployment& deployment) {
  NETTAG_EXPECTS(deployment.ids.size() == deployment.positions.size(),
                 "corrupt deployment: ids/positions size mismatch");
  out << kMagic << '\n';
  out << "readers " << deployment.readers.size() << '\n';
  out << std::setprecision(17);
  for (const auto& r : deployment.readers) out << r.x << ' ' << r.y << '\n';
  out << "tags " << deployment.ids.size() << '\n';
  for (std::size_t i = 0; i < deployment.ids.size(); ++i) {
    out << std::hex << deployment.ids[i] << std::dec << ' '
        << deployment.positions[i].x << ' ' << deployment.positions[i].y
        << '\n';
  }
  NETTAG_EXPECTS(out.good(), "write failure while saving deployment");
}

Deployment load_deployment(std::istream& in) {
  std::string line;
  NETTAG_EXPECTS(std::getline(in, line) && line == kMagic,
                 "not a nettag deployment file");
  std::string keyword;
  std::size_t count = 0;

  Deployment deployment;
  NETTAG_EXPECTS(static_cast<bool>(in >> keyword >> count) &&
                     keyword == "readers",
                 "expected 'readers <count>'");
  deployment.readers.resize(count);
  for (auto& r : deployment.readers) {
    NETTAG_EXPECTS(static_cast<bool>(in >> r.x >> r.y),
                   "truncated reader list");
  }

  NETTAG_EXPECTS(static_cast<bool>(in >> keyword >> count) &&
                     keyword == "tags",
                 "expected 'tags <count>'");
  deployment.ids.resize(count);
  deployment.positions.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    NETTAG_EXPECTS(static_cast<bool>(in >> std::hex >> deployment.ids[i] >>
                                     std::dec >> deployment.positions[i].x >>
                                     deployment.positions[i].y),
                   "truncated tag list");
  }
  return deployment;
}

void save_deployment_file(const std::string& path,
                          const Deployment& deployment) {
  std::ofstream out(path);
  NETTAG_EXPECTS(out.is_open(), "cannot open file for writing: " + path);
  save_deployment(out, deployment);
}

Deployment load_deployment_file(const std::string& path) {
  std::ifstream in(path);
  NETTAG_EXPECTS(in.is_open(), "cannot open file for reading: " + path);
  return load_deployment(in);
}

}  // namespace nettag::net
