// Network topology: the asymmetric link structure of a networked tag system.
//
// Three link classes exist (SII, SIII-A):
//   * reader -> tag  (range R): the reader's request reaches every covered tag
//     in one hop;
//   * tag -> reader  (range r'): only tier-1 tags are heard by the reader;
//   * tag <-> tag    (range r): the multi-hop relay fabric.
//
// A Topology stores tag-to-tag adjacency in CSR form plus the two reader
// relations, and the BFS tier of every tag ("tier-k tags are those whose
// shortest paths to the reader are k hops long", SIII-C).  Tags that cannot
// reach the reader are "not considered to be in the system" (SII) and carry
// tier kUnreachable; callers either exclude them up front (connected_subset)
// or let protocol engines skip them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "net/deployment.hpp"

namespace nettag::net {

/// Tier value of tags with no path to the reader.
inline constexpr int kUnreachable = -1;

/// Immutable link structure + tiers for one reader over one tag set.
class Topology {
 public:
  /// Builds the geometric topology of `deployment` under `cfg` ranges, using
  /// reader `reader_index` of the deployment as the sink.
  Topology(const Deployment& deployment, const SystemConfig& cfg,
           int reader_index = 0);

  /// Builds a topology from an explicit undirected tag-to-tag adjacency list
  /// and the set of tags the reader hears (`reader_hears`).  `reader_covers`
  /// marks tags that decode reader broadcasts; pass empty to mean "all".
  /// Used by tests and synthetic scenarios.
  Topology(std::vector<TagId> ids,
           const std::vector<std::vector<TagIndex>>& adjacency,
           std::vector<bool> reader_hears, std::vector<bool> reader_covers);

  [[nodiscard]] int tag_count() const noexcept {
    return static_cast<int>(ids_.size());
  }

  [[nodiscard]] const std::vector<TagId>& ids() const noexcept { return ids_; }
  [[nodiscard]] TagId id_of(TagIndex t) const {
    return ids_[checked(t)];
  }

  /// Neighbors of tag `t` (tags whose transmissions `t` senses and vice
  /// versa — links are symmetric under a uniform tag-to-tag range).
  [[nodiscard]] std::span<const TagIndex> neighbors(TagIndex t) const {
    const auto i = checked(t);
    return {neighbor_data_.data() + neighbor_starts_[i],
            neighbor_starts_[i + 1] - neighbor_starts_[i]};
  }

  [[nodiscard]] int degree(TagIndex t) const {
    return static_cast<int>(neighbors(t).size());
  }

  /// True when the reader senses tag `t` (distance <= r'; tier-1 candidates).
  [[nodiscard]] bool reader_hears(TagIndex t) const {
    return reader_hears_[checked(t)];
  }

  /// True when tag `t` decodes the reader's broadcast (distance <= R).
  [[nodiscard]] bool reader_covers(TagIndex t) const {
    return reader_covers_[checked(t)];
  }

  /// BFS tier of tag `t` (1 = heard directly; kUnreachable = no path).
  [[nodiscard]] int tier(TagIndex t) const { return tiers_[checked(t)]; }

  [[nodiscard]] const std::vector<int>& tiers() const noexcept {
    return tiers_;
  }

  /// Largest tier present, 0 when no tag is reachable (paper: K).
  [[nodiscard]] int tier_count() const noexcept { return tier_count_; }

  /// Indices of all tags at tier `k`, ascending.
  [[nodiscard]] std::vector<TagIndex> tags_at_tier(int k) const;

  /// Number of reachable tags.
  [[nodiscard]] int reachable_count() const noexcept {
    return reachable_count_;
  }

  /// True iff every tag has a path to the reader.
  [[nodiscard]] bool fully_connected() const noexcept {
    return reachable_count_ == tag_count();
  }

  /// Sum of tiers over reachable tags — the total number of hops every ID
  /// must travel in an ID-collection protocol; drives SICP's cost.
  [[nodiscard]] std::int64_t total_hops() const noexcept;

 private:
  void build_from_adjacency(
      const std::vector<std::vector<TagIndex>>& adjacency);
  void compute_tiers();

  [[nodiscard]] std::size_t checked(TagIndex t) const {
    NETTAG_EXPECTS(t >= 0 && t < tag_count(), "tag index out of range");
    return static_cast<std::size_t>(t);
  }

  std::vector<TagId> ids_;
  std::vector<std::size_t> neighbor_starts_;  // CSR offsets, size n+1
  std::vector<TagIndex> neighbor_data_;
  std::vector<bool> reader_hears_;
  std::vector<bool> reader_covers_;
  std::vector<int> tiers_;
  int tier_count_ = 0;
  int reachable_count_ = 0;
};

/// Copies `deployment` keeping only tags that can reach reader
/// `reader_index` under `cfg` — the paper's "tags that cannot reach any
/// reader are not in the system".
[[nodiscard]] Deployment connected_subset(const Deployment& deployment,
                                          const SystemConfig& cfg,
                                          int reader_index = 0);

}  // namespace nettag::net
