#include "net/radio_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "geom/grid_index.hpp"

namespace nettag::net {

namespace {

/// Standard normal upper-tail probability Q(x) = 1 - Phi(x).
double q_function(double x) {
  return 0.5 * std::erfc(x / std::numbers::sqrt2);
}

/// Deterministic standard-normal draw for an unordered tag pair: both
/// endpoints must compute the SAME shadowing value (link symmetry), so the
/// draw hashes the pair rather than consuming a generator stream.
double pair_normal(TagId a, TagId b, Seed seed) {
  const TagId lo = std::min(a, b);
  const TagId hi = std::max(a, b);
  const std::uint64_t h = fmix64(fmix64(lo ^ seed) ^ hi);
  const std::uint64_t h2 = fmix64(h ^ 0x9e3779b97f4a7c15ULL);
  // Box-Muller from two hash-derived uniforms in (0, 1).
  const double u1 =
      (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

void RadioModel::validate() const {
  NETTAG_EXPECTS(path_loss_exponent >= 1.5 && path_loss_exponent <= 6.0,
                 "path-loss exponent out of the physical range");
  NETTAG_EXPECTS(shadowing_sigma_db >= 0.0, "sigma must be non-negative");
  NETTAG_EXPECTS(reference_range_m > 0.0, "reference range must be positive");
  NETTAG_EXPECTS(max_range_factor >= 1.0, "max range factor must be >= 1");
}

double RadioModel::link_probability(double distance_m) const {
  validate();
  NETTAG_EXPECTS(distance_m >= 0.0, "distance must be non-negative");
  if (distance_m <= 0.0) return 1.0;
  const double loss_db = 10.0 * path_loss_exponent *
                         std::log10(distance_m / reference_range_m);
  if (shadowing_sigma_db == 0.0) return loss_db <= 0.0 ? 1.0 : 0.0;
  return q_function(loss_db / shadowing_sigma_db);
}

Topology build_shadowed_topology(const Deployment& deployment,
                                 const SystemConfig& sys,
                                 const RadioModel& model) {
  model.validate();
  sys.validate();
  NETTAG_EXPECTS(deployment.ids.size() == deployment.positions.size(),
                 "deployment ids/positions size mismatch");
  const int n = deployment.tag_count();
  const double max_range = model.reference_range_m * model.max_range_factor;

  const geom::GridIndex index(deployment.positions, max_range);
  std::vector<std::vector<TagIndex>> adjacency(static_cast<std::size_t>(n));
  for (TagIndex t = 0; t < n; ++t) {
    index.for_each_in_range(
        deployment.positions[static_cast<std::size_t>(t)], max_range, t,
        [&](TagIndex other) {
          if (other < t) return;  // evaluate each pair once, then mirror
          const double d = geom::distance(
              deployment.positions[static_cast<std::size_t>(t)],
              deployment.positions[static_cast<std::size_t>(other)]);
          const double loss_db =
              d <= 0.0 ? -1e9
                       : 10.0 * model.path_loss_exponent *
                             std::log10(d / model.reference_range_m);
          const double shadow =
              model.shadowing_sigma_db *
              pair_normal(deployment.ids[static_cast<std::size_t>(t)],
                          deployment.ids[static_cast<std::size_t>(other)],
                          model.shadowing_seed);
          if (loss_db <= shadow) {
            adjacency[static_cast<std::size_t>(t)].push_back(other);
            adjacency[static_cast<std::size_t>(other)].push_back(t);
          }
        });
  }
  for (auto& list : adjacency) std::sort(list.begin(), list.end());

  std::vector<bool> hears(static_cast<std::size_t>(n), false);
  std::vector<bool> covers(static_cast<std::size_t>(n), false);
  const geom::Point reader = deployment.readers.empty()
                                 ? geom::Point{0.0, 0.0}
                                 : deployment.readers.front();
  for (TagIndex t = 0; t < n; ++t) {
    const double d = geom::distance(
        deployment.positions[static_cast<std::size_t>(t)], reader);
    hears[static_cast<std::size_t>(t)] = d <= sys.tag_to_reader_range_m;
    covers[static_cast<std::size_t>(t)] = d <= sys.reader_to_tag_range_m;
  }
  return Topology(deployment.ids, adjacency, std::move(hears),
                  std::move(covers));
}

}  // namespace nettag::net
