#include "geom/disk.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace nettag::geom {

Point sample_disk(Rng& rng, Point center, double radius) {
  return sample_annulus(rng, center, 0.0, radius);
}

Point sample_annulus(Rng& rng, Point center, double r_inner, double r_outer) {
  NETTAG_EXPECTS(r_inner >= 0.0 && r_outer >= r_inner,
                 "annulus radii must satisfy 0 <= inner <= outer");
  // Inverse-CDF in the radial coordinate: area grows with rho^2, so
  // rho = sqrt(U * (ro^2 - ri^2) + ri^2) is uniform over the annulus.
  const double u = rng.uniform01();
  const double rho = std::sqrt(u * (r_outer * r_outer - r_inner * r_inner) +
                               r_inner * r_inner);
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return {center.x + rho * std::cos(theta), center.y + rho * std::sin(theta)};
}

std::vector<Point> sample_disk_points(Rng& rng, Point center, double radius,
                                      int count) {
  NETTAG_EXPECTS(count >= 0, "count must be non-negative");
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    points.push_back(sample_disk(rng, center, radius));
  return points;
}

}  // namespace nettag::geom
