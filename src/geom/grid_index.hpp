// Uniform-grid spatial index for fixed-radius neighbor queries.
//
// Building the tag-to-tag topology at n = 10,000 requires ~n range queries;
// a grid with cell size = query radius answers each by scanning at most nine
// cells, giving O(n * density * r^2) total work instead of O(n^2).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "geom/point.hpp"

namespace nettag::geom {

/// Immutable point set indexed on a uniform grid.
class GridIndex {
 public:
  /// Indexes `points` (copied) with grid cells of size `cell_size` metres.
  GridIndex(std::vector<Point> points, double cell_size);

  /// Indices of all points with distance(p, q) <= radius, EXCLUDING any point
  /// at index `exclude` (pass kInvalidTagIndex to keep all).  `radius` must
  /// not exceed the cell size (one-ring scan correctness).
  [[nodiscard]] std::vector<TagIndex> query(Point q, double radius,
                                            TagIndex exclude) const;

  /// Calls fn(index) for every point within `radius` of `q`, excluding
  /// `exclude`.  Avoids the vector allocation of query().
  template <typename Fn>
  void for_each_in_range(Point q, double radius, TagIndex exclude,
                         Fn&& fn) const {
    NETTAG_EXPECTS(radius >= 0.0 && radius <= cell_size_ + 1e-12,
                   "query radius must not exceed the grid cell size");
    const double r_sq = radius * radius;
    const int cq_x = cell_coord(q.x - min_x_);
    const int cq_y = cell_coord(q.y - min_y_);
    for (int cy = cq_y - 1; cy <= cq_y + 1; ++cy) {
      if (cy < 0 || cy >= cells_y_) continue;
      for (int cx = cq_x - 1; cx <= cq_x + 1; ++cx) {
        if (cx < 0 || cx >= cells_x_) continue;
        const std::size_t cell = static_cast<std::size_t>(cy) *
                                     static_cast<std::size_t>(cells_x_) +
                                 static_cast<std::size_t>(cx);
        for (std::size_t k = starts_[cell]; k < starts_[cell + 1]; ++k) {
          const TagIndex idx = ordered_[k];
          if (idx == exclude) continue;
          if (distance_sq(points_[static_cast<std::size_t>(idx)], q) <= r_sq)
            fn(idx);
        }
      }
    }
  }

  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  [[nodiscard]] int cell_coord(double offset) const noexcept {
    const int c = static_cast<int>(offset / cell_size_);
    return c;
  }

  std::vector<Point> points_;
  double cell_size_;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  int cells_x_ = 1;
  int cells_y_ = 1;
  // CSR layout: ordered_ holds point indices grouped by cell;
  // starts_[c]..starts_[c+1] is cell c's slice.
  std::vector<std::size_t> starts_;
  std::vector<TagIndex> ordered_;
};

}  // namespace nettag::geom
