#include "geom/circle_math.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace nettag::geom {

namespace {
/// arccos with the argument clamped into [-1, 1]; the circle formulas push
/// arguments epsilon outside the domain at tangency.
double safe_acos(double x) noexcept {
  return std::acos(std::clamp(x, -1.0, 1.0));
}
}  // namespace

double circle_intersection_area(double r1, double r2, double d) {
  NETTAG_EXPECTS(r1 >= 0.0 && r2 >= 0.0 && d >= 0.0,
                 "radii and distance must be non-negative");
  if (r1 == 0.0 || r2 == 0.0) return 0.0;
  if (d >= r1 + r2) return 0.0;  // disjoint
  const double r_min = std::min(r1, r2);
  const double r_max = std::max(r1, r2);
  if (d <= r_max - r_min) {
    // Smaller circle fully contained.
    return std::numbers::pi * r_min * r_min;
  }
  // Standard lens area: sum of the two circular segments.
  const double alpha =
      safe_acos((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1));
  const double beta =
      safe_acos((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2));
  return r1 * r1 * (alpha - std::sin(2.0 * alpha) / 2.0) +
         r2 * r2 * (beta - std::sin(2.0 * beta) / 2.0);
}

double area_outside(double rc, double d, double rb) {
  NETTAG_EXPECTS(rc >= 0.0 && rb >= 0.0 && d >= 0.0,
                 "radii and distance must be non-negative");
  const double full = std::numbers::pi * rc * rc;
  return full - circle_intersection_area(rc, rb, d);
}

}  // namespace nettag::geom
