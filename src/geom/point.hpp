// 2-D points and distances for the planar deployment model.
#pragma once

#include <cmath>

namespace nettag::geom {

/// A point in the deployment plane, in metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(Point a, double s) noexcept {
    return {a.x * s, a.y * s};
  }
  friend constexpr bool operator==(Point a, Point b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared Euclidean distance — the hot-path primitive; avoids sqrt in
/// neighbor queries.
[[nodiscard]] constexpr double distance_sq(Point a, Point b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
[[nodiscard]] inline double distance(Point a, Point b) noexcept {
  return std::sqrt(distance_sq(a, b));
}

/// Distance of `p` from the origin.
[[nodiscard]] inline double norm(Point p) noexcept {
  return std::sqrt(p.x * p.x + p.y * p.y);
}

}  // namespace nettag::geom
