#include "geom/grid_index.hpp"

#include <algorithm>
#include <cmath>

namespace nettag::geom {

GridIndex::GridIndex(std::vector<Point> points, double cell_size)
    : points_(std::move(points)), cell_size_(cell_size) {
  NETTAG_EXPECTS(cell_size > 0.0, "cell size must be positive");
  if (points_.empty()) {
    starts_.assign(2, 0);
    return;
  }
  double max_x = points_[0].x;
  double max_y = points_[0].y;
  min_x_ = points_[0].x;
  min_y_ = points_[0].y;
  for (const Point& p : points_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  cells_x_ = std::max(1, static_cast<int>((max_x - min_x_) / cell_size_) + 1);
  cells_y_ = std::max(1, static_cast<int>((max_y - min_y_) / cell_size_) + 1);

  const std::size_t cell_total =
      static_cast<std::size_t>(cells_x_) * static_cast<std::size_t>(cells_y_);
  std::vector<std::size_t> counts(cell_total, 0);
  auto cell_of = [this](const Point& p) {
    const auto cx = static_cast<std::size_t>(cell_coord(p.x - min_x_));
    const auto cy = static_cast<std::size_t>(cell_coord(p.y - min_y_));
    return cy * static_cast<std::size_t>(cells_x_) + cx;
  };
  for (const Point& p : points_) ++counts[cell_of(p)];

  starts_.assign(cell_total + 1, 0);
  for (std::size_t c = 0; c < cell_total; ++c)
    starts_[c + 1] = starts_[c] + counts[c];

  ordered_.resize(points_.size());
  std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t c = cell_of(points_[i]);
    ordered_[cursor[c]++] = static_cast<TagIndex>(i);
  }
}

std::vector<TagIndex> GridIndex::query(Point q, double radius,
                                       TagIndex exclude) const {
  std::vector<TagIndex> out;
  for_each_in_range(q, radius, exclude,
                    [&out](TagIndex idx) { out.push_back(idx); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nettag::geom
