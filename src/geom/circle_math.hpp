// Circle-intersection geometry used by the analytical cost model (SIV-C).
//
// Equations (6), (7) and (9) of the paper reduce to the classic area of the
// lens formed by two intersecting circles.  We implement the general
// two-circle intersection area once, numerically robustly, and derive the
// paper's shadow-zone S_i and overlap-zone S'_i from it; the tests validate
// both against Monte-Carlo integration.
#pragma once

namespace nettag::geom {

/// Area of the intersection of two circles with radii `r1`, `r2` whose
/// centres are `d` apart.  Handles containment and disjointness exactly.
[[nodiscard]] double circle_intersection_area(double r1, double r2, double d);

/// Area of the part of a circle of radius `rc` (centred `d` away from the
/// origin) lying *outside* the circle of radius `rb` centred at the origin.
/// This is the paper's "shadow zone" S_i (Fig. 2(b)) with rb = R.
[[nodiscard]] double area_outside(double rc, double d, double rb);

}  // namespace nettag::geom
