// Uniform sampling over disks and annuli.
//
// The evaluation deploys tags uniformly at random inside a disk of radius
// 30 m centred on the reader (SVI-A).  Annulus sampling is used by tests and
// by synthetic topologies that pin tags to specific tiers.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geom/point.hpp"

namespace nettag::geom {

/// One point uniform over the disk of radius `radius` centred at `center`.
[[nodiscard]] Point sample_disk(Rng& rng, Point center, double radius);

/// One point uniform over the annulus r_inner <= |p - center| <= r_outer.
[[nodiscard]] Point sample_annulus(Rng& rng, Point center, double r_inner,
                                   double r_outer);

/// `count` i.i.d. uniform points in the disk.
[[nodiscard]] std::vector<Point> sample_disk_points(Rng& rng, Point center,
                                                    double radius, int count);

}  // namespace nettag::geom
