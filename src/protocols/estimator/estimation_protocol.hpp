// GMLE-based RFID estimation over CCM (SIV-B).
//
// From the reader's point of view each CCM session behaves exactly like one
// framed request in a traditional RFID system (Theorem 1): it sends (f, p)
// and receives back the status bitmap of the whole tag population.  The
// estimator therefore plugs in unchanged: a rough phase finds the order of
// magnitude of n, then accurate frames at optimal load c = 1.59 accumulate
// Fisher information until the (alpha, beta) requirement of Eq. 2 is met.
#pragma once

#include <functional>
#include <vector>

#include "ccm/options.hpp"
#include "common/bitmap.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "protocols/estimator/gmle.hpp"
#include "sim/clock.hpp"
#include "sim/energy.hpp"

namespace nettag::protocols {

/// Tuning of the estimation protocol.
struct EstimationConfig {
  double alpha = 0.95;  ///< confidence level of Eq. 2
  double beta = 0.05;   ///< relative error bound of Eq. 2

  /// Accurate-phase frame size; 0 derives the single-frame size from
  /// (alpha, beta) — 1671 for the paper's setting.
  FrameSize frame_size = 0;

  /// Safety cap on accurate frames.
  int max_frames = 64;

  /// Rough phase: small frames with halving participation until the bitmap
  /// desaturates.  Skipped when `initial_n_hat` > 0 (the paper's evaluation
  /// assumes the right p is known, SVI-B).
  double initial_n_hat = 0.0;
  FrameSize rough_frame_size = 64;
  int max_rough_frames = 40;

  /// Base seed; frame i uses a seed derived from it.
  Seed base_seed = 0x5eed;
};

/// Outcome of one estimation run.
struct EstimationResult {
  double n_hat = 0.0;
  double std_error = 0.0;
  bool accuracy_met = false;
  int rough_frames = 0;
  int accurate_frames = 0;
  sim::SlotClock clock;  ///< total execution time over all sessions
  std::vector<FrameObservation> frames;  ///< accurate-phase observations
};

/// A source of status bitmaps for a request (f, p, seed).  The networked
/// implementation runs a CCM session; tests may substitute the traditional
/// single-hop bitmap (Theorem 1 says they are the same).
using BitmapSource =
    std::function<Bitmap(FrameSize f, double p, Seed seed)>;

/// Runs the full two-phase estimation against an abstract bitmap source.
/// `sink` receives one `estimate_frame` event per frame (both phases) and a
/// final `estimate_end`.
[[nodiscard]] EstimationResult estimate_cardinality(
    const EstimationConfig& config, const BitmapSource& source,
    obs::TraceSink& sink = obs::null_sink());

/// Networked-tag front end: each frame is one CCM session over `topology`
/// with `ccm_template` supplying L_c and the feature switches; time and
/// per-tag energy accumulate into the result / `energy`.  The per-session
/// event stream is forwarded to `sink` as well.
[[nodiscard]] EstimationResult estimate_cardinality_ccm(
    const EstimationConfig& config, const net::Topology& topology,
    const ccm::CcmConfig& ccm_template, sim::EnergyMeter& energy,
    obs::TraceSink& sink = obs::null_sink());

}  // namespace nettag::protocols
