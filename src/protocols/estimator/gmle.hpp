// Generalized Maximum Likelihood Estimator for RFID cardinality (SIV-A).
//
// Following Li et al. (ToN 2012), the reader issues requests (f, p); each tag
// participates with probability p and sets one hashed slot of the f-slot
// frame.  The estimate n̂ maximises the joint likelihood of the observed
// empty-slot counts across all frames so far; the Fisher information of the
// same likelihood yields the confidence interval that drives the stopping
// rule Prob{ n̂(1-β) <= n <= n̂(1+β) } >= α (Eq. 2).
//
// The optimal per-frame load is p·n/f ≈ 1.59 (the paper's p = 1.59 f / n̂);
// at that load the frame size needed to reach (α, β) in a single frame is
// f = (z_α/β)² (1-q)/(c² q) with c = 1.59, q = e^{-c} — which reproduces the
// paper's f = 1671 for α = 95 %, β = 5 % exactly.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace nettag::protocols {

/// One frame's sufficient statistic for the estimator.
struct FrameObservation {
  FrameSize frame_size = 0;  ///< f_i
  double participation = 1.0;  ///< p_i
  int empty_slots = 0;  ///< z_i: number of 0-bits in the status bitmap
};

/// The load factor c = p n / f that maximises information per slot.
inline constexpr double kOptimalLoad = 1.59;

/// Result of a maximum-likelihood solve.
struct GmleEstimate {
  double n_hat = 0.0;        ///< MLE of the tag population
  double std_error = 0.0;    ///< 1 / sqrt(Fisher information) at n_hat
  bool saturated = false;    ///< every slot busy in every frame: only a lower
                             ///< bound on n is known
};

/// Maximum-likelihood estimate of the population from `frames`.
///
/// Solves d/dn sum_i [ z_i ln q_i + (f_i - z_i) ln(1 - q_i) ] = 0 with
/// q_i = (1 - p_i/f_i)^n by bisection (the score is strictly decreasing).
/// `n_max` bounds the search.  Frames with p_i = 0 or f_i = 0 are rejected.
[[nodiscard]] GmleEstimate gmle_estimate(
    std::span<const FrameObservation> frames, double n_max = 1e9);

/// Fisher information about n carried by `frames` at population `n`:
/// I(n) = sum_i f_i w_i^2 q_i / (1 - q_i),  w_i = ln(1 - p_i/f_i).
[[nodiscard]] double gmle_fisher_information(
    std::span<const FrameObservation> frames, double n);

/// True when the estimate satisfies the (alpha, beta) requirement of Eq. 2
/// under the normal approximation: z_alpha * std_error <= beta * n_hat.
/// `alpha` follows the paper's convention (z from the one-sided quantile,
/// which reproduces f = 1671 at alpha=0.95, beta=0.05).
[[nodiscard]] bool gmle_accuracy_met(const GmleEstimate& estimate,
                                     double alpha, double beta);

/// Frame size at optimal load for which a single frame meets (alpha, beta).
/// Independent of n (the load is normalised by p).  Paper SVI-B: 1671.
[[nodiscard]] FrameSize gmle_required_frame_size(double alpha, double beta);

/// The sampling probability for the next frame, p = 1.59 f / n̂, clamped to
/// (0, 1].
[[nodiscard]] double gmle_sampling_probability(FrameSize f, double n_hat);

}  // namespace nettag::protocols
