#include "protocols/estimator/estimation_protocol.hpp"

#include <cmath>

#include "ccm/session.hpp"
#include "ccm/slot_selector.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/work_counters.hpp"
#include "obs/profiler.hpp"

namespace nettag::protocols {

namespace {

Seed frame_seed(Seed base, int phase, int index) {
  return fmix64(base ^ fmix64(static_cast<Seed>(phase) * 1'000'003 +
                              static_cast<Seed>(index)));
}

}  // namespace

EstimationResult estimate_cardinality(const EstimationConfig& config,
                                      const BitmapSource& source,
                                      obs::TraceSink& sink) {
  const obs::ProfileScope profile("gmle.estimate");
  NETTAG_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0,
                 "alpha must be in (0,1)");
  NETTAG_EXPECTS(config.beta > 0.0 && config.beta < 1.0,
                 "beta must be in (0,1)");
  NETTAG_EXPECTS(config.max_frames >= 1, "need at least one frame");

  EstimationResult result;
  double n_hat = config.initial_n_hat;

  // --- Rough phase: find the order of magnitude of n (SIV-A's two-phase
  // design; Chen et al. showed estimators owe their accuracy to it). ---
  if (n_hat <= 0.0) {
    const FrameSize f0 = config.rough_frame_size;
    NETTAG_EXPECTS(f0 > 0, "rough frame size must be positive");
    double p = 1.0;
    for (int i = 0; i < config.max_rough_frames; ++i) {
      const Bitmap bitmap = source(f0, p, frame_seed(config.base_seed, 0, i));
      NETTAG_COUNT(estimator_frames, 1);
      ++result.rough_frames;
      const int zeros = f0 - bitmap.count();
      sink.event("estimate_frame", {{"phase", "rough"},
                                    {"index", i},
                                    {"f", f0},
                                    {"p", p},
                                    {"empty_slots", zeros}});
      if (bitmap.none()) {
        // Nothing answered: either n = 0 or p got too small to sample
        // anyone.  Treat a first all-idle probe as an empty system.
        if (i == 0) {
          result.n_hat = 0.0;
          result.accuracy_met = true;
          sink.event("estimate_end",
                     {{"n_hat", result.n_hat},
                      {"std_error", result.std_error},
                      {"accuracy_met", result.accuracy_met},
                      {"rough_frames", result.rough_frames},
                      {"accurate_frames", result.accurate_frames}});
          return result;
        }
        p = std::min(1.0, p * 4.0);  // back off: we overshot the halving
        continue;
      }
      if (zeros > 0) {
        // Zero-estimator: E[zeros] = f (1 - p/f)^n.
        n_hat = std::log(static_cast<double>(f0) /
                         static_cast<double>(zeros)) /
                -std::log1p(-p / static_cast<double>(f0));
        n_hat = std::max(n_hat, 1.0);
        break;
      }
      // Saturated: sample fewer tags.  Scalar halving in retry order, not
      // an order-sensitive data fold.
      p /= 2.0;  // nettag-lint: allow(float-for-accum)
    }
    if (n_hat <= 0.0) n_hat = 1.0;  // pathological: proceed conservatively
  }

  // --- Accurate phase: frames at optimal load until Eq. 2 is met. ---
  const FrameSize f = config.frame_size > 0
                          ? config.frame_size
                          : gmle_required_frame_size(config.alpha,
                                                     config.beta);
  GmleEstimate estimate;
  for (int i = 0; i < config.max_frames; ++i) {
    const double p = gmle_sampling_probability(f, n_hat);
    const Bitmap bitmap = source(f, p, frame_seed(config.base_seed, 1, i));
    NETTAG_COUNT(estimator_frames, 1);
    ++result.accurate_frames;
    result.frames.push_back(
        {.frame_size = f, .participation = p, .empty_slots = f - bitmap.count()});
    estimate = gmle_estimate(result.frames);
    n_hat = std::max(estimate.n_hat, 1.0);
    sink.event("estimate_frame", {{"phase", "accurate"},
                                  {"index", i},
                                  {"f", f},
                                  {"p", p},
                                  {"empty_slots", f - bitmap.count()},
                                  {"n_hat", estimate.n_hat}});
    if (gmle_accuracy_met(estimate, config.alpha, config.beta)) {
      result.accuracy_met = true;
      break;
    }
  }
  result.n_hat = estimate.n_hat;
  result.std_error = estimate.std_error;
  sink.event("estimate_end", {{"n_hat", result.n_hat},
                              {"std_error", result.std_error},
                              {"accuracy_met", result.accuracy_met},
                              {"rough_frames", result.rough_frames},
                              {"accurate_frames", result.accurate_frames}});
  return result;
}

EstimationResult estimate_cardinality_ccm(const EstimationConfig& config,
                                          const net::Topology& topology,
                                          const ccm::CcmConfig& ccm_template,
                                          sim::EnergyMeter& energy,
                                          obs::TraceSink& sink) {
  sim::SlotClock clock;
  const BitmapSource source = [&](FrameSize f, double p, Seed seed) {
    ccm::CcmConfig session_config = ccm_template;
    session_config.frame_size = f;
    session_config.request_seed = seed;
    const ccm::HashedSlotSelector selector(p);
    ccm::SessionResult session =
        ccm::run_session(topology, session_config, selector, energy, sink);
    clock.merge(session.clock);
    return session.bitmap;
  };
  EstimationResult result = estimate_cardinality(config, source, sink);
  result.clock = clock;
  return result;
}

}  // namespace nettag::protocols
