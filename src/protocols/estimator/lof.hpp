// Lottery-Frame (LoF) cardinality estimation over CCM.
//
// Qian et al.'s LoF (the paper's reference [2]) is the PCSA/Flajolet-Martin
// style alternative to GMLE: each tag hashes itself into one of m groups and
// into a geometrically distributed slot within the group (slot i with
// probability 2^-(i+1)).  The reader estimates n from the position of the
// lowest idle slot of each group:  n ~= (m / phi) * 2^{mean(R_g)},
// phi = 0.77351.  LoF needs only ONE frame of m * s slots regardless of n —
// cheaper than GMLE's load-optimal frames but with a fixed relative error
// ~0.78/sqrt(m) that cannot be tightened by re-running with the same m.
//
// Under CCM the whole LoF frame is one session bitmap: groups are laid out
// consecutively, and Theorem 1 again makes the networked bitmap exact.
#pragma once

#include <vector>

#include "ccm/options.hpp"
#include "ccm/slot_selector.hpp"
#include "common/bitmap.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "sim/energy.hpp"

namespace nettag::protocols {

/// Fisher-Martin correction constant: E[2^R] = phi * n for one group.
inline constexpr double kLofPhi = 0.77351;

/// Layout of one LoF frame.
struct LofConfig {
  /// Number of groups m; relative error ~ 0.78 / sqrt(m).
  int groups = 256;

  /// Slots per group (geometric depth); 32 supports n up to ~2^32 / m.
  int slots_per_group = 32;

  Seed seed = 0x10f;

  [[nodiscard]] FrameSize frame_size() const {
    return static_cast<FrameSize>(groups * slots_per_group);
  }

  void validate() const;
};

/// Slot selector implementing the LoF lottery: group by one hash, slot by
/// the number of leading zeros of another (geometric).
class LofSlotSelector final : public ccm::SlotSelector {
 public:
  explicit LofSlotSelector(const LofConfig& config) : config_(config) {
    config_.validate();
  }

  [[nodiscard]] std::vector<SlotIndex> pick(TagId id, Seed seed,
                                            FrameSize f) const override;

 private:
  LofConfig config_;
};

/// Estimates n from a collected LoF bitmap.
struct LofEstimate {
  double n_hat = 0.0;
  /// Predicted relative standard error, ~0.78 / sqrt(m).
  double relative_std_error = 0.0;
};
[[nodiscard]] LofEstimate lof_estimate(const Bitmap& bitmap,
                                       const LofConfig& config);

/// Runs one LoF session over a networked-tag system and estimates n.
struct LofOutcome {
  LofEstimate estimate;
  sim::SlotClock clock;
};
[[nodiscard]] LofOutcome estimate_cardinality_lof(
    const LofConfig& config, const net::Topology& topology,
    const ccm::CcmConfig& ccm_template, sim::EnergyMeter& energy,
    obs::TraceSink& sink = obs::null_sink());

}  // namespace nettag::protocols
