#include "protocols/estimator/gmle.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/work_counters.hpp"

namespace nettag::protocols {

namespace {

/// ln(1 - p/f): the per-tag log-probability of leaving one given slot empty.
double log_keepout(const FrameObservation& frame) {
  NETTAG_EXPECTS(frame.frame_size > 0, "frame size must be positive");
  NETTAG_EXPECTS(frame.participation > 0.0 && frame.participation <= 1.0,
                 "participation must be in (0,1]");
  NETTAG_EXPECTS(frame.empty_slots >= 0 &&
                     frame.empty_slots <= frame.frame_size,
                 "empty-slot count out of range");
  return std::log1p(-frame.participation /
                    static_cast<double>(frame.frame_size));
}

/// Score d(log L)/dn = sum_i w_i (z_i - f_i q_i) / (1 - q_i); strictly
/// decreasing in n wherever defined.
double score(std::span<const FrameObservation> frames, double n) {
  NETTAG_COUNT(gmle_score_evals, 1);
  double total = 0.0;
  for (const auto& fr : frames) {
    const double w = log_keepout(fr);
    const double q = std::exp(n * w);
    const double f = static_cast<double>(fr.frame_size);
    const double z = static_cast<double>(fr.empty_slots);
    const double denom = std::max(1.0 - q, 1e-300);
    // Fixed frame order: the MLE sums per-frame terms serially.
    total += w * (z - f * q) / denom;  // nettag-lint: allow(float-for-accum)
  }
  return total;
}

}  // namespace

double gmle_fisher_information(std::span<const FrameObservation> frames,
                               double n) {
  NETTAG_EXPECTS(n >= 0.0, "population must be non-negative");
  double info = 0.0;
  for (const auto& fr : frames) {
    const double w = log_keepout(fr);
    const double q = std::exp(n * w);
    const double f = static_cast<double>(fr.frame_size);
    const double denom = std::max(1.0 - q, 1e-300);
    // Fixed frame order, as in log_likelihood_derivative above.
    info += f * w * w * q / denom;  // nettag-lint: allow(float-for-accum)
  }
  return info;
}

GmleEstimate gmle_estimate(std::span<const FrameObservation> frames,
                           double n_max) {
  NETTAG_EXPECTS(!frames.empty(), "need at least one frame");
  NETTAG_EXPECTS(n_max > 0.0, "n_max must be positive");

  GmleEstimate est;

  bool all_empty = true;
  bool all_busy = true;
  for (const auto& fr : frames) {
    (void)log_keepout(fr);  // validates the frame
    if (fr.empty_slots != fr.frame_size) all_empty = false;
    if (fr.empty_slots != 0) all_busy = false;
  }
  if (all_empty) {
    // Every slot idle in every frame: the MLE is n = 0.
    est.n_hat = 0.0;
    est.std_error = 0.0;
    return est;
  }
  if (all_busy || score(frames, n_max) > 0.0) {
    // The likelihood increases all the way to the search bound: the frames
    // only witness "at least n_max" (fully saturated bitmaps).
    est.n_hat = n_max;
    est.saturated = true;
    est.std_error = 1.0 / std::sqrt(std::max(
                              gmle_fisher_information(frames, n_max), 1e-300));
    return est;
  }

  double lo = 0.0;  // score(0+) > 0 unless all_empty (handled above)
  double hi = n_max;
  for (int it = 0; it < 200 && (hi - lo) > 1e-9 * std::max(1.0, hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (score(frames, mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  est.n_hat = 0.5 * (lo + hi);
  est.std_error =
      1.0 /
      std::sqrt(std::max(gmle_fisher_information(frames, est.n_hat), 1e-300));
  NETTAG_ENSURE(est.n_hat >= 0.0 && est.n_hat <= n_max,
                "MLE root escaped the [0, n_max] bracket");
  NETTAG_ENSURE(est.std_error >= 0.0,
                "Fisher-information standard error is negative");
  return est;
}

bool gmle_accuracy_met(const GmleEstimate& estimate, double alpha,
                       double beta) {
  NETTAG_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  NETTAG_EXPECTS(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
  if (estimate.saturated) return false;
  const double z = normal_inverse_cdf(alpha);
  return z * estimate.std_error <= beta * estimate.n_hat;
}

FrameSize gmle_required_frame_size(double alpha, double beta) {
  NETTAG_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  NETTAG_EXPECTS(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
  const double z = normal_inverse_cdf(alpha);
  const double c = kOptimalLoad;
  const double q = std::exp(-c);
  // Per-frame relative std at load c: sigma/n = 1/sqrt(f c^2 q/(1-q)).
  // Rounded to nearest, which is how the paper lands on f = 1671 for
  // (95 %, 5 %): the exact value is 1671.37.
  const double f = (z / beta) * (z / beta) * (1.0 - q) / (c * c * q);
  return static_cast<FrameSize>(std::lround(f));
}

double gmle_sampling_probability(FrameSize f, double n_hat) {
  NETTAG_EXPECTS(f > 0, "frame size must be positive");
  if (n_hat <= 0.0) return 1.0;
  return std::clamp(kOptimalLoad * static_cast<double>(f) / n_hat, 1e-9, 1.0);
}

}  // namespace nettag::protocols
