#include "protocols/estimator/lof.hpp"

#include <bit>
#include <cmath>

#include "ccm/session.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace nettag::protocols {

void LofConfig::validate() const {
  NETTAG_EXPECTS(groups >= 1, "need at least one group");
  NETTAG_EXPECTS(slots_per_group >= 2 && slots_per_group <= 64,
                 "slots per group must be in [2, 64]");
}

std::vector<SlotIndex> LofSlotSelector::pick(TagId id, Seed seed,
                                             FrameSize f) const {
  NETTAG_EXPECTS(f == config_.frame_size(),
                 "frame size does not match the LoF layout");
  const std::uint64_t group_hash = tag_hash(id, seed);
  const auto group = static_cast<SlotIndex>(
      group_hash % static_cast<std::uint64_t>(config_.groups));
  // Geometric slot: number of leading ones... use trailing zeros of an
  // independent hash; P(slot = i) = 2^-(i+1), clamped to the group depth.
  const std::uint64_t geo_hash = tag_hash(id, seed ^ 0x6e0'5107ULL);
  int slot = std::countr_zero(geo_hash | (1ULL << 63));
  slot = std::min(slot, config_.slots_per_group - 1);
  return {static_cast<SlotIndex>(group * config_.slots_per_group + slot)};
}

LofEstimate lof_estimate(const Bitmap& bitmap, const LofConfig& config) {
  config.validate();
  NETTAG_EXPECTS(bitmap.size() == config.frame_size(),
                 "bitmap does not match the LoF layout");
  LofEstimate estimate;
  double rank_sum = 0.0;
  int empty_groups = 0;
  for (int g = 0; g < config.groups; ++g) {
    int rank = config.slots_per_group;  // R_g: lowest idle slot index
    bool any_busy = false;
    for (int s = 0; s < config.slots_per_group; ++s) {
      const bool busy = bitmap.test(
          static_cast<SlotIndex>(g * config.slots_per_group + s));
      any_busy |= busy;
      if (!busy && rank == config.slots_per_group) rank = s;
    }
    if (!any_busy) ++empty_groups;
    // Fixed group order; serial fold over the LoF groups.
    rank_sum +=  // nettag-lint: allow(float-for-accum)
        static_cast<double>(rank);
  }
  const double m = static_cast<double>(config.groups);
  estimate.n_hat = m / kLofPhi * std::pow(2.0, rank_sum / m);
  // Small-range correction (standard for PCSA-family sketches): below
  // ~2.5 m the geometric estimator is badly biased; linear counting over
  // the empty groups, n = -m ln(V/m), is accurate there.
  if (estimate.n_hat < 2.5 * m && empty_groups > 0) {
    estimate.n_hat =
        -m * std::log(static_cast<double>(empty_groups) / m);
  }
  estimate.relative_std_error = 0.78 / std::sqrt(m);
  return estimate;
}

LofOutcome estimate_cardinality_lof(const LofConfig& config,
                                    const net::Topology& topology,
                                    const ccm::CcmConfig& ccm_template,
                                    sim::EnergyMeter& energy,
                                    obs::TraceSink& sink) {
  config.validate();
  ccm::CcmConfig session_config = ccm_template;
  session_config.frame_size = config.frame_size();
  session_config.request_seed = config.seed;
  const LofSlotSelector selector(config);
  const ccm::SessionResult session =
      ccm::run_session(topology, session_config, selector, energy, sink);
  LofOutcome outcome;
  outcome.estimate = lof_estimate(session.bitmap, config);
  outcome.clock = session.clock;
  sink.event("lof_end",
             {{"n_hat", outcome.estimate.n_hat},
              {"relative_std_error", outcome.estimate.relative_std_error},
              {"groups", config.groups},
              {"f", config.frame_size()}});
  return outcome;
}

}  // namespace nettag::protocols
