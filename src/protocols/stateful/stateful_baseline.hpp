// Stateful networked-tag baseline — the design the paper argues AGAINST.
//
// SI/SII contrast two tag designs: STATE-FREE tags (this library's subject:
// no network state, everything rebuilt per operation) and STATEFUL tags
// that keep neighbor tables and a routing tree alive between operations by
// beaconing, like sensor-network nodes.  The paper's premise is economic:
// "maintaining the neighbor relationship and updating the routing tables
// require frequent network-wide communications, a cost not worthwhile for
// infrequent operations".  This module prices that premise.
//
// Maintenance model (standard neighborhood-management arithmetic):
//   * every tag beacons once per `beacon_period_slots` (96-bit HELLO,
//     overheard by all neighbors — the dominant term, degree * 96 bits
//     received per period);
//   * tag movement invalidates state: after each inter-operation interval
//     a `churn` fraction of links changed; affected tags exchange repair
//     traffic (REG-style parent re-selection, 2 x 96 bits per changed
//     link endpoint);
//   * at operation time the tree already exists, so an ID collection runs
//     ONLY SICP's serialized phase 2 (no tree build) — the payoff the
//     maintenance bought.
//
// The comparison (`bench/stateful_vs_statefree`) then asks: at how many
// operations per day does keeping state break even with rebuilding it?
#pragma once

#include "common/config.hpp"
#include "common/types.hpp"

namespace nettag::protocols {

/// Parameters of the stateful maintenance regime.
struct StatefulConfig {
  /// Nominal slots between two HELLO beacons of one tag.
  double beacon_period_slots = 1e5;

  /// Fraction of links that change per inter-operation interval (from
  /// net::link_churn of the mobility model in force).
  double churn_per_interval = 0.1;

  /// Slots between operations.
  double interval_slots = 1e7;

  void validate() const;
};

/// Per-interval cost prediction for one tag (averages over the network).
struct StatefulCosts {
  double beacons_sent = 0.0;          ///< HELLOs per interval
  double maintenance_sent_bits = 0.0; ///< beacons + repairs, transmitted
  double maintenance_recv_bits = 0.0; ///< overheard beacons + repairs
  double operation_sent_bits = 0.0;   ///< phase-2-only collection, per op
  double operation_recv_bits = 0.0;

  /// Total bits (TX + RX) per interval if `operations` collections run.
  [[nodiscard]] double total_bits(double operations) const {
    return maintenance_sent_bits + maintenance_recv_bits +
           operations * (operation_sent_bits + operation_recv_bits);
  }
};

/// Predicts the stateful regime's per-tag costs for deployment `sys` with
/// mean degree implied by its density and range.
[[nodiscard]] StatefulCosts stateful_costs(const SystemConfig& sys,
                                           const StatefulConfig& cfg);

/// The state-free comparison point: per-operation bits of a full SICP run
/// (tree build included) or of a CCM session, taken from the analytical
/// models so the comparison needs no simulation.
struct StateFreeCosts {
  double sicp_bits_per_op = 0.0;  ///< avg sent+recv, tree rebuilt each op
  double ccm_bits_per_op = 0.0;   ///< avg sent+recv, TRP operating point
};
[[nodiscard]] StateFreeCosts state_free_costs(const SystemConfig& sys,
                                              FrameSize ccm_frame);

/// Operations per interval at which the stateful regime's total cost first
/// drops below stateless SICP (infinity-like large value when it never
/// does within `max_ops`).
[[nodiscard]] double stateful_break_even_ops(const SystemConfig& sys,
                                             const StatefulConfig& cfg,
                                             double max_ops = 1e6);

}  // namespace nettag::protocols
