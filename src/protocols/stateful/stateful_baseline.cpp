#include "protocols/stateful/stateful_baseline.hpp"

#include <numbers>

#include "analysis/cost_model.hpp"
#include "analysis/sicp_model.hpp"
#include "common/error.hpp"

namespace nettag::protocols {

void StatefulConfig::validate() const {
  NETTAG_EXPECTS(beacon_period_slots > 0.0, "beacon period must be positive");
  NETTAG_EXPECTS(churn_per_interval >= 0.0 && churn_per_interval <= 1.0,
                 "churn must be in [0,1]");
  NETTAG_EXPECTS(interval_slots > 0.0, "interval must be positive");
}

StatefulCosts stateful_costs(const SystemConfig& sys,
                             const StatefulConfig& cfg) {
  sys.validate();
  cfg.validate();
  const double degree = sys.density() * std::numbers::pi *
                        sys.tag_to_tag_range_m * sys.tag_to_tag_range_m;

  StatefulCosts costs;
  costs.beacons_sent = cfg.interval_slots / cfg.beacon_period_slots;

  // Repairs: each churned incident link costs ~2 messages (neighbor-table
  // update + parent/route re-selection handshake).
  const double repair_messages = 2.0 * cfg.churn_per_interval * degree;
  costs.maintenance_sent_bits =
      96.0 * (costs.beacons_sent + repair_messages);
  // Symmetric network: a tag overhears from each neighbor what it sends.
  costs.maintenance_recv_bits = degree * costs.maintenance_sent_bits;

  // Operation with a live tree: SICP phase 2 only.
  const analysis::SicpCosts full = analysis::sicp_cost_model(sys);
  const double phase2_messages =
      full.expected_tier /* subtree payloads */ + 1.0 /* polls, ~1/child */;
  costs.operation_sent_bits = 96.0 * phase2_messages;
  const double phase2_slots = full.data_hops + full.poll_slots;
  costs.operation_recv_bits =
      degree * costs.operation_sent_bits + phase2_slots /* idle sampling */;
  return costs;
}

StateFreeCosts state_free_costs(const SystemConfig& sys,
                                FrameSize ccm_frame) {
  sys.validate();
  StateFreeCosts costs;
  const analysis::SicpCosts sicp = analysis::sicp_cost_model(sys);
  costs.sicp_bits_per_op = sicp.avg_sent_bits + sicp.avg_received_bits;

  analysis::CostModelInput input;
  input.sys = sys;
  input.frame_size = ccm_frame;
  input.participation = 1.0;
  const analysis::TagCost ccm = analysis::average_tag_cost(input);
  costs.ccm_bits_per_op = ccm.send_bits() + ccm.receive_bits();
  return costs;
}

double stateful_break_even_ops(const SystemConfig& sys,
                               const StatefulConfig& cfg, double max_ops) {
  NETTAG_EXPECTS(max_ops > 0.0, "max_ops must be positive");
  const StatefulCosts stateful = stateful_costs(sys, cfg);
  const StateFreeCosts state_free = state_free_costs(sys, 3228);

  const double maintenance =
      stateful.maintenance_sent_bits + stateful.maintenance_recv_bits;
  const double per_op_saving =
      state_free.sicp_bits_per_op -
      (stateful.operation_sent_bits + stateful.operation_recv_bits);
  if (per_op_saving <= 0.0) return max_ops;
  const double ops = maintenance / per_op_saving;
  return ops < max_ops ? ops : max_ops;
}

}  // namespace nettag::protocols
