#include "protocols/unknown/unknown_detection.hpp"

#include <cmath>

#include "ccm/session.hpp"
#include "ccm/slot_selector.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace nettag::protocols {

double unknown_detection_probability(int n_inventory, int unknown,
                                     FrameSize f) {
  NETTAG_EXPECTS(n_inventory >= 0 && unknown >= 0, "counts must be >= 0");
  NETTAG_EXPECTS(f > 0, "frame size must be positive");
  if (unknown == 0) return 0.0;
  const double q =
      std::exp(static_cast<double>(n_inventory) *
               std::log1p(-1.0 / static_cast<double>(f)));
  return 1.0 - std::pow(1.0 - q, static_cast<double>(unknown));
}

FrameSize unknown_required_frame_size(int n_inventory, int tolerance,
                                      double delta) {
  NETTAG_EXPECTS(n_inventory >= 1, "inventory must be non-empty");
  NETTAG_EXPECTS(tolerance >= 0, "tolerance must be >= 0");
  NETTAG_EXPECTS(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  const int threshold = tolerance + 1;
  const double q_req =
      1.0 - std::exp(std::log(1.0 - delta) / static_cast<double>(threshold));
  const double log_keep =
      std::log(q_req) / static_cast<double>(n_inventory);
  auto sized = static_cast<FrameSize>(
      std::ceil(1.0 / -std::expm1(log_keep) - 1e-9));
  while (unknown_detection_probability(n_inventory, threshold, sized) <
         delta) {
    ++sized;
  }
  return sized;
}

UnknownTagDetector::UnknownTagDetector(std::vector<TagId> inventory)
    : inventory_(std::move(inventory)) {
  NETTAG_EXPECTS(!inventory_.empty(), "inventory must not be empty");
}

FrameSize UnknownTagDetector::effective_frame_size(
    const UnknownDetectionConfig& config) const {
  if (config.frame_size > 0) return config.frame_size;
  return unknown_required_frame_size(static_cast<int>(inventory_.size()),
                                     config.tolerance, config.delta);
}

std::vector<SlotIndex> UnknownTagDetector::foreign_slots(
    const Bitmap& observed, Seed seed) const {
  Bitmap unexplained = observed;
  Bitmap predicted(observed.size());
  for (const TagId id : inventory_)
    predicted.set(slot_pick(id, seed, observed.size()));
  unexplained.subtract(predicted);
  return unexplained.set_bits();
}

UnknownDetectionOutcome UnknownTagDetector::detect(
    const net::Topology& topology, const ccm::CcmConfig& ccm_template,
    const UnknownDetectionConfig& config, sim::EnergyMeter& energy) const {
  NETTAG_EXPECTS(config.executions >= 1, "need at least one execution");
  const FrameSize f = effective_frame_size(config);

  UnknownDetectionOutcome outcome;
  const ccm::HashedSlotSelector everyone(1.0);
  for (int e = 0; e < config.executions; ++e) {
    const Seed seed = fmix64(config.base_seed + static_cast<Seed>(e));
    ccm::CcmConfig session_config = ccm_template;
    session_config.frame_size = f;
    session_config.request_seed = seed;
    const ccm::SessionResult session =
        ccm::run_session(topology, session_config, everyone, energy);
    outcome.clock.merge(session.clock);
    ++outcome.executions_run;

    const auto foreign = foreign_slots(session.bitmap, seed);
    if (!foreign.empty()) {
      outcome.alarm = true;
      outcome.foreign_slots.insert(outcome.foreign_slots.end(),
                                   foreign.begin(), foreign.end());
      if (config.stop_on_alarm) break;
    }
  }
  return outcome;
}

}  // namespace nettag::protocols
