// Unknown-tag detection over CCM — the dual of missing-tag detection.
//
// The paper's related work (refs [12], [13]) studies the converse inventory
// fault: tags present in the field that are NOT on the books (misplaced
// deliveries, counterfeits, foreign pallets).  The bitmap model handles it
// with the same machinery mirrored: the reader predicts the busy set from
// the inventory; a busy slot it did NOT predict can only have been lit by a
// non-inventory tag.  Theorem 1 makes this sound — zero false alarms, every
// flagged slot proves at least one unknown tag.
//
// An unknown tag hides only when its slot collides with a predicted one,
// so one execution detects it with probability q ~= (1 - 1/f)^n_inventory;
// sizing and multi-execution boosting mirror TRP exactly.
#pragma once

#include <vector>

#include "ccm/options.hpp"
#include "common/bitmap.hpp"
#include "net/topology.hpp"
#include "sim/clock.hpp"
#include "sim/energy.hpp"

namespace nettag::protocols {

/// Probability that one execution with frame size `f` exposes at least one
/// of `unknown` foreign tags against an inventory of `n_inventory` tags:
/// P = 1 - (1 - q)^unknown, q = (1 - 1/f)^n_inventory.
[[nodiscard]] double unknown_detection_probability(int n_inventory,
                                                   int unknown, FrameSize f);

/// Smallest frame size detecting more than `tolerance` unknown tags with
/// probability >= delta (sizing at tolerance + 1, mirroring Eq. 14).
[[nodiscard]] FrameSize unknown_required_frame_size(int n_inventory,
                                                    int tolerance,
                                                    double delta);

/// Tuning of the detection run.
struct UnknownDetectionConfig {
  double delta = 0.95;
  int tolerance = 50;

  /// Frame size; 0 derives it from (inventory, tolerance, delta).
  FrameSize frame_size = 0;

  int executions = 1;
  bool stop_on_alarm = true;
  Seed base_seed = 0x0ddba11;
};

/// Outcome of a run.
struct UnknownDetectionOutcome {
  bool alarm = false;

  /// Busy-but-unpredicted slots observed (across executions run).
  std::vector<SlotIndex> foreign_slots;

  int executions_run = 0;
  sim::SlotClock clock;
};

/// Detector holding the trusted inventory.
class UnknownTagDetector {
 public:
  explicit UnknownTagDetector(std::vector<TagId> inventory);

  [[nodiscard]] FrameSize effective_frame_size(
      const UnknownDetectionConfig& config) const;

  /// Pure helper: busy slots of `observed` that no inventory tag explains.
  [[nodiscard]] std::vector<SlotIndex> foreign_slots(const Bitmap& observed,
                                                     Seed seed) const;

  /// Runs up to `config.executions` CCM sessions over the field `topology`
  /// (which may contain foreign tags) and reports.
  [[nodiscard]] UnknownDetectionOutcome detect(
      const net::Topology& topology, const ccm::CcmConfig& ccm_template,
      const UnknownDetectionConfig& config, sim::EnergyMeter& energy) const;

  [[nodiscard]] const std::vector<TagId>& inventory() const noexcept {
    return inventory_;
  }

 private:
  std::vector<TagId> inventory_;
};

}  // namespace nettag::protocols
