#include "protocols/idcollect/spanning_tree.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/contract.hpp"
#include "common/error.hpp"

namespace nettag::protocols {

namespace {

/// Window size for `contenders` transmitters at the configured load.
int window_size(const TreeBuildConfig& config, std::size_t contenders) {
  const double w = static_cast<double>(contenders) / config.window_load;
  return std::max(config.min_window, static_cast<int>(std::ceil(w)));
}

/// Charges TX bits to each transmitter and overheard RX bits to every
/// neighbor not transmitting in the same slot (half duplex).
void charge_window_energy(const net::Topology& topology,
                          const std::vector<TagIndex>& transmitters,
                          const std::vector<int>& slot_of,
                          sim::EnergyMeter& energy) {
  for (const TagIndex u : transmitters) {
    energy.add_sent(u, kTagIdBits);
    for (const TagIndex v : topology.neighbors(u)) {
      const int v_slot = slot_of[static_cast<std::size_t>(v)];
      if (v_slot >= 0 && v_slot == slot_of[static_cast<std::size_t>(u)])
        continue;  // v is deaf: transmitting in the same slot
      energy.add_received(v, kTagIdBits);
    }
  }
}

}  // namespace

std::vector<int> SpanningTree::subtree_sizes() const {
  const auto n = parent.size();
  std::vector<int> size(n, 0);
  // Children lists are acyclic by construction; accumulate deepest-first.
  std::vector<TagIndex> order;
  order.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (level[t] != net::kUnreachable) order.push_back(static_cast<TagIndex>(t));
  }
  std::sort(order.begin(), order.end(), [this](TagIndex a, TagIndex b) {
    return level[static_cast<std::size_t>(a)] >
           level[static_cast<std::size_t>(b)];
  });
  for (const TagIndex t : order) {
    const auto i = static_cast<std::size_t>(t);
    size[i] += 1;  // the tag's own ID
    const TagIndex p = parent[i];
    if (p != kInvalidTagIndex) size[static_cast<std::size_t>(p)] += size[i];
  }
  return size;
}

SpanningTree build_spanning_tree(const net::Topology& topology,
                                 const TreeBuildConfig& config, Rng& rng,
                                 sim::EnergyMeter& energy,
                                 sim::SlotClock& clock) {
  NETTAG_EXPECTS(config.window_load > 0.0 && config.window_load <= 1.0,
                 "window load must be in (0,1]");
  NETTAG_EXPECTS(config.min_window >= 2, "minimum window too small");
  const int n = topology.tag_count();

  SpanningTree tree;
  tree.parent.assign(static_cast<std::size_t>(n), kInvalidTagIndex);
  tree.level.assign(static_cast<std::size_t>(n), net::kUnreachable);
  tree.children.assign(static_cast<std::size_t>(n), {});

  // Scratch: slot picked by each tag in the current window (-1 = silent).
  std::vector<int> slot_of(static_cast<std::size_t>(n), -1);

  // --- Registration: `pending` tags announce themselves to their parent
  // (the reader when parent_of is empty) until each is cleanly decoded. ---
  const auto run_registration = [&](std::vector<TagIndex> pending,
                                    bool to_reader) {
    int windows = 0;
    while (!pending.empty()) {
      NETTAG_ASSERT(++windows <= config.max_windows_per_phase,
                    "registration phase failed to converge");
      ++tree.reg_windows;
      const int w = window_size(config, pending.size());
      clock.add_id_slots(w);
      for (const TagIndex c : pending)
        slot_of[static_cast<std::size_t>(c)] =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
      charge_window_energy(topology, pending, slot_of, energy);

      std::vector<TagIndex> still_pending;
      std::vector<std::pair<TagIndex, TagIndex>> successes;  // (child, parent)
      if (to_reader) {
        // Decode at the reader: unique tier-1 transmitter per slot.
        std::unordered_map<int, int> per_slot;
        for (const TagIndex c : pending)
          ++per_slot[slot_of[static_cast<std::size_t>(c)]];
        for (const TagIndex c : pending) {
          if (per_slot[slot_of[static_cast<std::size_t>(c)]] == 1) {
            successes.emplace_back(c, kInvalidTagIndex);
          } else {
            still_pending.push_back(c);
          }
        }
      } else {
        for (const TagIndex c : pending) {
          const TagIndex p = tree.parent[static_cast<std::size_t>(c)];
          NETTAG_ASSERT(p != kInvalidTagIndex, "pending tag without parent");
          // Decode at p: c's slot must be unique among p's transmitting
          // neighbors (any same-slot transmission in p's range collides).
          int same_slot = 0;
          for (const TagIndex w2 : topology.neighbors(p)) {
            const int ws = slot_of[static_cast<std::size_t>(w2)];
            if (ws >= 0 && ws == slot_of[static_cast<std::size_t>(c)])
              ++same_slot;
          }
          if (same_slot == 1) {
            successes.emplace_back(c, p);
          } else {
            still_pending.push_back(c);
          }
        }
      }
      for (const TagIndex c : pending) slot_of[static_cast<std::size_t>(c)] = -1;

      // Serialized ACKs: one 96-bit slot per decoded registration.  A tag
      // ACK is overheard by the whole neighborhood; the reader's downlink
      // ACK is decoded only by the addressed child (preamble filtering —
      // see DESIGN.md's accounting rules).
      for (const auto& [c, p] : successes) {
        clock.add_id_slots(1);
        if (p == kInvalidTagIndex) {
          tree.reader_children.push_back(c);
          energy.add_received(c, kTagIdBits);
        } else {
          tree.children[static_cast<std::size_t>(p)].push_back(c);
          energy.add_sent(p, kTagIdBits);
          for (const TagIndex v : topology.neighbors(p))
            energy.add_received(v, kTagIdBits);
        }
      }
      pending = std::move(still_pending);
    }
  };

  // --- Initial broadcast: the request reaches only tags within r'. ---
  clock.add_id_slots(1);
  std::vector<TagIndex> newly_covered;
  for (TagIndex t = 0; t < n; ++t) {
    if (topology.reader_hears(t)) {
      energy.add_received(t, kTagIdBits);
      tree.level[static_cast<std::size_t>(t)] = 1;
      newly_covered.push_back(t);
    }
  }
  run_registration(newly_covered, /*to_reader=*/true);

  // --- Level-by-level flooding. ---
  int k = 1;
  std::vector<TagIndex> contenders = std::move(newly_covered);
  while (!contenders.empty()) {
    // Beacon until every uncovered neighbor of a level-k tag is covered.
    newly_covered.clear();
    int windows = 0;
    while (true) {
      std::vector<TagIndex> active;
      for (const TagIndex u : contenders) {
        for (const TagIndex v : topology.neighbors(u)) {
          if (tree.level[static_cast<std::size_t>(v)] == net::kUnreachable) {
            active.push_back(u);
            break;
          }
        }
      }
      if (active.empty()) break;
      NETTAG_ASSERT(++windows <= config.max_windows_per_phase,
                    "beacon phase failed to converge");
      ++tree.beacon_windows;
      const int w = window_size(config, active.size());
      clock.add_id_slots(w);
      for (const TagIndex u : active)
        slot_of[static_cast<std::size_t>(u)] =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
      charge_window_energy(topology, active, slot_of, energy);

      // Each uncovered tag adopts the transmitter of the earliest slot in
      // which exactly one of its neighbors transmitted.
      std::vector<TagIndex> targets;
      for (const TagIndex u : active) {
        for (const TagIndex v : topology.neighbors(u)) {
          const auto iv = static_cast<std::size_t>(v);
          if (tree.level[iv] == net::kUnreachable && slot_of[iv] != -2) {
            slot_of[iv] = -2;  // stamp: queued as a target this window
            targets.push_back(v);
          }
        }
      }
      for (const TagIndex v : targets) {
        const auto iv = static_cast<std::size_t>(v);
        slot_of[iv] = -1;  // clear the stamp before decoding
        std::unordered_map<int, int> per_slot;  // slot -> transmitter count
        for (const TagIndex x : topology.neighbors(v)) {
          const int xs = slot_of[static_cast<std::size_t>(x)];
          if (xs >= 0) ++per_slot[xs];
        }
        // Adopt one cleanly decoded beaconer, chosen uniformly: picking the
        // earliest slot instead would make low-slot beaconers parents of
        // hundreds of tags and wildly unbalance the tree.  Candidates are
        // gathered in CSR neighbor order — iterating `per_slot` here would
        // feed unordered_map bucket order (which varies across standard
        // libraries) into the RNG pick and break cross-platform determinism.
        std::vector<TagIndex> candidates;
        for (const TagIndex x : topology.neighbors(v)) {
          const int xs = slot_of[static_cast<std::size_t>(x)];
          if (xs >= 0 && per_slot[xs] == 1) candidates.push_back(x);
        }
        if (!candidates.empty()) {
          tree.level[iv] = k + 1;
          tree.parent[iv] = candidates[rng.below(candidates.size())];
          newly_covered.push_back(v);
        }
      }
      for (const TagIndex u : active) slot_of[static_cast<std::size_t>(u)] = -1;
    }

    std::sort(newly_covered.begin(), newly_covered.end());
    newly_covered.erase(
        std::unique(newly_covered.begin(), newly_covered.end()),
        newly_covered.end());
    run_registration(newly_covered, /*to_reader=*/false);
    contenders = newly_covered;
    ++k;
  }
  if (contract::kChecked && contract::enabled()) {
    // The flooding covers tier k+1 completely before advancing, so the tree
    // must be a shortest-path tree: level == BFS tier, and every non-root
    // parent sits exactly one level shallower.
    for (TagIndex t = 0; t < n; ++t) {
      const auto i = static_cast<std::size_t>(t);
      NETTAG_ENSURE(tree.level[i] == topology.tier(t),
                    "spanning-tree level disagrees with the BFS tier");
      if (tree.level[i] == net::kUnreachable || tree.level[i] == 1) {
        NETTAG_ENSURE(tree.parent[i] == kInvalidTagIndex,
                      "root-level or unreachable tag acquired a parent");
      } else {
        NETTAG_ENSURE(
            tree.parent[i] != kInvalidTagIndex &&
                tree.level[static_cast<std::size_t>(tree.parent[i])] ==
                    tree.level[i] - 1,
            "spanning-tree parent is not one level shallower");
      }
    }
  }
  return tree;
}

}  // namespace nettag::protocols
