// Serialized ID Collection Protocol (SICP) — the paper's baseline (SVI-A).
//
// After the spanning tree is built, collection is fully serialized (one
// transmission in the whole network at a time), so phase 2 is collision-free
// by construction: the reader DFS-polls its children; a polled tag reports
// its own 96-bit ID, which bubbles hop by hop to the reader (one 96-bit slot
// per hop plus a 96-bit link ACK), then polls each of its children in turn.
// Every ID therefore crosses tier(t) hops — the Sigma_t tier(t) term that
// dominates SICP's cost; promiscuous overhearing charges each transmission
// to every neighbor of the transmitter, which is what makes SICP's received
// bits balloon (Table II/IV).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "protocols/idcollect/spanning_tree.hpp"
#include "sim/clock.hpp"
#include "sim/energy.hpp"

namespace nettag::protocols {

/// Outcome of one ID-collection run (SICP or CICP).
struct IdCollectionResult {
  /// IDs decoded by the reader (unordered).
  std::vector<TagId> collected;

  /// Total execution time; all slots are 96-bit id-slots.
  sim::SlotClock clock;

  /// The routing tree that was built (for diagnostics/tests).
  SpanningTree tree;

  /// Slot breakdown of the collection phase (SVI-B notes roughly one third
  /// of SICP's slots carry IDs).
  SlotCount data_slots = 0;  ///< 96-bit ID payload hops
  SlotCount poll_slots = 0;  ///< DFS polls
  SlotCount ack_slots = 0;   ///< link-layer ACKs
};

/// Runs SICP over `topology`: distributed tree build (stochastic, via `rng`)
/// followed by the serialized DFS collection (deterministic).  `sink`
/// receives an `idcollect_tree` event after the build and a final
/// `idcollect_end`.
[[nodiscard]] IdCollectionResult run_sicp(
    const net::Topology& topology, const TreeBuildConfig& config, Rng& rng,
    sim::EnergyMeter& energy, obs::TraceSink& sink = obs::null_sink());

}  // namespace nettag::protocols
