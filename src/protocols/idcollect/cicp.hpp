// Contention-based ID Collection Protocol (CICP) — the second baseline of
// [16] (SVI-A notes SICP outperforms it; we implement both).
//
// The same spanning tree routes IDs, but instead of serialized DFS polling,
// every tag holding undelivered IDs contends in framed-ALOHA windows: it
// picks a random slot and transmits the head of its ID queue to its parent.
// The hop succeeds only when the parent hears exactly one transmission in
// that slot (any same-slot transmission anywhere in the parent's range
// collides); successes are acknowledged in serialized 96-bit slots.  The
// process repeats until the reader holds every reachable ID.
#pragma once

#include "protocols/idcollect/sicp.hpp"

namespace nettag::protocols {

/// Runs CICP over `topology`.  Same result type as SICP; `poll_slots` stays
/// zero (CICP has no polls) and window slots are reported through the clock.
/// `sink` receives `idcollect_tree`, one `cicp_window` per contention
/// window, and a final `idcollect_end`.
[[nodiscard]] IdCollectionResult run_cicp(
    const net::Topology& topology, const TreeBuildConfig& config, Rng& rng,
    sim::EnergyMeter& energy, obs::TraceSink& sink = obs::null_sink());

}  // namespace nettag::protocols
