#include "protocols/idcollect/sicp.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/work_counters.hpp"

namespace nettag::protocols {

namespace {

/// Emits the post-build tree summary shared by SICP and CICP.
void emit_tree_event(obs::TraceSink& sink, const SpanningTree& tree,
                     const sim::SlotClock& clock) {
  if (!sink.enabled()) return;
  int reachable = 0;
  int depth = 0;
  for (const int level : tree.level) {
    if (level == net::kUnreachable) continue;
    ++reachable;
    depth = std::max(depth, level);
  }
  sink.event("idcollect_tree", {{"reachable", reachable},
                                {"depth", depth},
                                {"build_slots", clock.id_slots()}});
}

}  // namespace

IdCollectionResult run_sicp(const net::Topology& topology,
                            const TreeBuildConfig& config, Rng& rng,
                            sim::EnergyMeter& energy, obs::TraceSink& sink) {
  const int n = topology.tag_count();
  IdCollectionResult result;
  result.tree = build_spanning_tree(topology, config, rng, energy, result.clock);
  const SpanningTree& tree = result.tree;
  emit_tree_event(sink, tree, result.clock);
  const std::vector<int> subtree = tree.subtree_sizes();

  // Phase 2 is serialized and collision-free, so its cost is a deterministic
  // function of the tree; we account it edge-by-edge instead of slot-by-slot.
  // No link ACKs are needed: serialization guarantees delivery.
  //
  // Per tag u (reachable):
  //   polls sent       = |children(u)|   (one DFS poll per child)
  //   ID payloads sent = subtree(u)      (own ID + every descendant's, each
  //                                       forwarded one hop up)
  // The reader sends |reader_children| polls.
  //
  // Energy: every tag transmission (96 bits) is overheard by every neighbor
  // (promiscuous CSMA listening); the reader's downlink polls are decoded
  // only by the addressed child (preamble filtering, DESIGN.md).

  std::vector<BitCount> tx_messages(static_cast<std::size_t>(n), 0);

  for (TagIndex u = 0; u < n; ++u) {
    const auto i = static_cast<std::size_t>(u);
    if (tree.level[i] == net::kUnreachable) continue;
    const auto polls = static_cast<BitCount>(tree.children[i].size());
    const auto payloads = static_cast<BitCount>(subtree[i]);
    tx_messages[i] = polls + payloads;
    result.poll_slots += polls;
    result.data_slots += payloads;
  }
  SlotCount reader_tx = 0;
  for (const TagIndex c : tree.reader_children) {
    reader_tx += 1;  // poll, decoded by the polled child only
    energy.add_received(c, kTagIdBits);
    result.poll_slots += 1;
  }

  // Time: one 96-bit slot per serialized transmission (tags + reader).
  SlotCount total_tx = reader_tx;
  for (const BitCount m : tx_messages) total_tx += m;
  NETTAG_COUNT(sicp_polls, total_tx);
  result.clock.add_id_slots(total_tx);

  // Energy: TX bits, then promiscuous overhearing by all neighbors.
  for (TagIndex u = 0; u < n; ++u) {
    const auto i = static_cast<std::size_t>(u);
    if (tx_messages[i] == 0) continue;
    energy.add_sent(u, tx_messages[i] * kTagIdBits);
    for (const TagIndex v : topology.neighbors(u))
      energy.add_received(v, tx_messages[i] * kTagIdBits);
  }

  // Idle listening: a state-free tag cannot know when its subtree is
  // addressed, so it preamble-samples every slot it is not transmitting in
  // (1 bit per slot, the same charge CCM pays per monitored slot).
  const SlotCount elapsed = result.clock.id_slots();
  for (TagIndex u = 0; u < n; ++u) {
    const auto i = static_cast<std::size_t>(u);
    if (tree.level[i] == net::kUnreachable) continue;
    energy.add_received(u, elapsed - tx_messages[i]);
  }

  // Collected IDs: every reachable tag's, exactly once.
  for (TagIndex t = 0; t < n; ++t) {
    if (tree.level[static_cast<std::size_t>(t)] != net::kUnreachable)
      result.collected.push_back(topology.id_of(t));
  }
  sink.event("idcollect_end",
             {{"protocol", "sicp"},
              {"collected", static_cast<int>(result.collected.size())},
              {"data_slots", result.data_slots},
              {"poll_slots", result.poll_slots},
              {"ack_slots", result.ack_slots},
              {"id_slots", result.clock.id_slots()}});
  return result;
}

}  // namespace nettag::protocols
