// Distributed spanning-tree construction for ID-collection protocols.
//
// SICP/CICP (Chen et al., ToN 2017 — the paper's baseline [16]) "first use a
// system-wide broadcast to establish a spanning tree for routing".  The
// reader's request only reaches tags within r' (SVI-A), so the request is
// flooded level by level: covered tags beacon (96-bit ID + level) in framed-
// ALOHA contention windows until every neighbor has decoded some beacon; a
// newly covered tag adopts the first cleanly decoded beaconer as its parent,
// then registers with it (96-bit REG, contention + serialized 96-bit ACK) so
// parents learn their child lists.  All message lengths, collision rules
// (decode iff exactly one in-range transmitter per slot) and promiscuous
// overhearing costs (every transmission charges 96 received bits to every
// listening neighbor) follow the reconstruction documented in DESIGN.md.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "sim/clock.hpp"
#include "sim/energy.hpp"

namespace nettag::protocols {

/// Contention-window tuning for the tree build.
struct TreeBuildConfig {
  /// Expected transmissions per slot; W = max(min_window, contenders/load).
  /// 0.5 keeps per-receiver collision probability low at any density.
  double window_load = 0.5;

  /// Smallest contention window ever issued.
  int min_window = 16;

  /// Safety bound on windows per phase (the build terminates with
  /// probability 1; this guards simulation bugs, not the protocol).
  int max_windows_per_phase = 10'000;
};

/// The established routing structure.
struct SpanningTree {
  /// Parent of each tag; kInvalidTagIndex for tier-1 tags (parent = reader)
  /// and for unreachable tags.
  std::vector<TagIndex> parent;

  /// Discovered level (hop count of the request); equals the topology's BFS
  /// tier for every reachable tag, net::kUnreachable otherwise.
  std::vector<int> level;

  /// Children lists (registration order).
  std::vector<std::vector<TagIndex>> children;

  /// The reader's direct children (registered tier-1 tags).
  std::vector<TagIndex> reader_children;

  /// Contention windows spent beaconing / registering (diagnostics).
  int beacon_windows = 0;
  int reg_windows = 0;

  /// Number of descendants of `t` including `t` itself; 0 for unreachable.
  [[nodiscard]] std::vector<int> subtree_sizes() const;
};

/// Runs the distributed build over `topology`, charging time to `clock`
/// (contention and ACK slots are 96-bit id-slots) and per-tag bits to
/// `energy`.  Covers exactly the reachable tags.
[[nodiscard]] SpanningTree build_spanning_tree(const net::Topology& topology,
                                               const TreeBuildConfig& config,
                                               Rng& rng,
                                               sim::EnergyMeter& energy,
                                               sim::SlotClock& clock);

}  // namespace nettag::protocols
