#include "protocols/idcollect/cicp.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "common/error.hpp"

namespace nettag::protocols {

namespace {

/// Post-build tree summary (mirrors SICP's event for comparable traces).
void emit_tree_event(obs::TraceSink& sink, const SpanningTree& tree,
                     const sim::SlotClock& clock) {
  if (!sink.enabled()) return;
  int reachable = 0;
  int depth = 0;
  for (const int level : tree.level) {
    if (level == net::kUnreachable) continue;
    ++reachable;
    depth = std::max(depth, level);
  }
  sink.event("idcollect_tree", {{"reachable", reachable},
                                {"depth", depth},
                                {"build_slots", clock.id_slots()}});
}

}  // namespace

IdCollectionResult run_cicp(const net::Topology& topology,
                            const TreeBuildConfig& config, Rng& rng,
                            sim::EnergyMeter& energy, obs::TraceSink& sink) {
  const int n = topology.tag_count();
  IdCollectionResult result;
  result.tree = build_spanning_tree(topology, config, rng, energy, result.clock);
  const SpanningTree& tree = result.tree;
  emit_tree_event(sink, tree, result.clock);

  // Per-tag queue of IDs still to be pushed one hop up.
  std::vector<std::deque<TagId>> queue(static_cast<std::size_t>(n));
  int undelivered = 0;
  for (TagIndex t = 0; t < n; ++t) {
    if (tree.level[static_cast<std::size_t>(t)] == net::kUnreachable) continue;
    queue[static_cast<std::size_t>(t)].push_back(topology.id_of(t));
    ++undelivered;  // counts IDs not yet at the reader
  }
  // An ID at tier k needs k successful hops; track remaining hops via queues.

  std::vector<int> slot_of(static_cast<std::size_t>(n), -1);
  int guard = 0;
  while (undelivered > 0) {
    NETTAG_ASSERT(++guard <= 1'000'000, "CICP failed to converge");

    std::vector<TagIndex> active;
    for (TagIndex t = 0; t < n; ++t) {
      if (!queue[static_cast<std::size_t>(t)].empty()) active.push_back(t);
    }
    NETTAG_ASSERT(!active.empty(), "undelivered IDs but no active tag");

    const int w = std::max(
        config.min_window,
        static_cast<int>(std::ceil(static_cast<double>(active.size()) /
                                   config.window_load)));
    result.clock.add_id_slots(w);
    for (const TagIndex u : active)
      slot_of[static_cast<std::size_t>(u)] =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));

    // TX + overhearing (same physical rules as the tree-build windows).
    for (const TagIndex u : active) {
      energy.add_sent(u, kTagIdBits);
      for (const TagIndex v : topology.neighbors(u)) {
        const int vs = slot_of[static_cast<std::size_t>(v)];
        if (vs >= 0 && vs == slot_of[static_cast<std::size_t>(u)]) continue;
        energy.add_received(v, kTagIdBits);
      }
    }

    // Decode at each receiver.  The reader hears all tier-1 transmitters;
    // a parent tag hears all its neighbors.  In both cases a slot decodes
    // iff exactly one in-range transmission occupies it, and the receiver
    // itself must not be transmitting in that slot (half duplex).
    std::unordered_map<int, int> reader_per_slot;
    for (const TagIndex u : active) {
      if (topology.reader_hears(u))
        ++reader_per_slot[slot_of[static_cast<std::size_t>(u)]];
    }

    std::vector<std::pair<TagIndex, TagIndex>> successes;  // (child, parent)
    for (const TagIndex u : active) {
      const auto iu = static_cast<std::size_t>(u);
      const TagIndex p = tree.parent[iu];
      if (p == kInvalidTagIndex) {
        if (reader_per_slot[slot_of[iu]] == 1)
          successes.emplace_back(u, kInvalidTagIndex);
        continue;
      }
      const auto ip = static_cast<std::size_t>(p);
      if (slot_of[ip] == slot_of[iu]) continue;  // parent deaf: same slot
      int same = 0;
      for (const TagIndex x : topology.neighbors(p)) {
        const int xs = slot_of[static_cast<std::size_t>(x)];
        if (xs >= 0 && xs == slot_of[iu]) ++same;
      }
      if (same == 1) successes.emplace_back(u, p);
    }
    for (const TagIndex u : active) slot_of[static_cast<std::size_t>(u)] = -1;

    // Serialized ACKs; the decoded ID moves one hop up (or out).
    for (const auto& [c, p] : successes) {
      const auto ic = static_cast<std::size_t>(c);
      const TagId id = queue[ic].front();
      queue[ic].pop_front();
      result.clock.add_id_slots(1);
      result.ack_slots += 1;
      if (p == kInvalidTagIndex) {
        result.collected.push_back(id);
        --undelivered;
        // Reader ACK: decoded by the addressed child only (DESIGN.md).
        energy.add_received(c, kTagIdBits);
      } else {
        queue[static_cast<std::size_t>(p)].push_back(id);
        energy.add_sent(p, kTagIdBits);
        for (const TagIndex v : topology.neighbors(p))
          energy.add_received(v, kTagIdBits);
      }
      result.data_slots += 1;  // the decoded hop carried an ID payload
    }
    sink.event("cicp_window", {{"window", guard},
                               {"active", static_cast<int>(active.size())},
                               {"slots", w},
                               {"successes", static_cast<int>(successes.size())},
                               {"undelivered", undelivered}});
  }

  // Idle listening: 1 bit preamble-sample per elapsed slot for every awake
  // (reachable) tag — same accounting rule as SICP and CCM.  The tag's own
  // transmission slots are a negligible fraction and are not subtracted.
  const SlotCount elapsed = result.clock.id_slots();
  for (TagIndex t = 0; t < n; ++t) {
    if (tree.level[static_cast<std::size_t>(t)] != net::kUnreachable)
      energy.add_received(t, elapsed);
  }
  sink.event("idcollect_end",
             {{"protocol", "cicp"},
              {"collected", static_cast<int>(result.collected.size())},
              {"data_slots", result.data_slots},
              {"poll_slots", result.poll_slots},
              {"ack_slots", result.ack_slots},
              {"id_slots", result.clock.id_slots()}});
  return result;
}

}  // namespace nettag::protocols
