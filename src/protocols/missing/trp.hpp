// Trusted Reader Protocol (TRP) frame sizing and detection math (SV-A).
//
// The reader knows all tag IDs a priori, so for any request seed it can
// predict exactly which slots of the f-slot frame must be busy.  A predicted
// busy slot observed idle implies every tag hashing there is absent.  A
// single execution must report an event with probability >= delta whenever
// more than m tags are missing (Eq. 14); the smallest such f minimises
// execution time.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace nettag::protocols {

/// The frame size the paper derives for n = 10,000, m = 50, delta = 95 %
/// (SVI-B).  Our from-first-principles sizing gives ~3500 for the same
/// inputs (the original TRP paper uses a slightly different approximation);
/// benches use this constant for paper parity.
inline constexpr FrameSize kPaperTrpFrameSize = 3228;

/// Probability that one execution with frame size `f` raises an alarm when
/// exactly `missing` of `n` tags are absent:
///   P = 1 - (1 - q)^missing,  q = (1 - 1/f)^(n - missing),
/// q being the chance a given missing tag shares its slot with no present
/// tag.  (Slots are treated independently — standard in the TRP analysis.)
[[nodiscard]] double trp_detection_probability(int n, int missing,
                                               FrameSize f);

/// Smallest frame size meeting Prob{alarm | missing = m+1} >= delta for a
/// population of `n` tags.  Detection probability grows with the number
/// missing, so sizing at the threshold m+1 covers Eq. 14's "more than m".
[[nodiscard]] FrameSize trp_required_frame_size(int n, int m, double delta);

}  // namespace nettag::protocols
