#include "protocols/missing/missing_protocol.hpp"

#include "ccm/session.hpp"
#include "ccm/slot_selector.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/work_counters.hpp"
#include "obs/profiler.hpp"
#include "protocols/missing/trp.hpp"

namespace nettag::protocols {

MissingTagDetector::MissingTagDetector(std::vector<TagId> inventory)
    : inventory_(std::move(inventory)) {
  NETTAG_EXPECTS(!inventory_.empty(), "inventory must not be empty");
}

FrameSize MissingTagDetector::effective_frame_size(
    const DetectionConfig& config) const {
  if (config.frame_size > 0) return config.frame_size;
  return trp_required_frame_size(static_cast<int>(inventory_.size()),
                                 config.tolerance_m, config.delta);
}

std::vector<SlotIndex> MissingTagDetector::silent_expected_slots(
    const Bitmap& observed, Seed seed) const {
  Bitmap predicted(observed.size());
  NETTAG_COUNT(detect_slot_scans, inventory_.size());
  for (const TagId id : inventory_)
    predicted.set(slot_pick(id, seed, observed.size()));
  predicted.subtract(observed);  // busy-in-prediction, idle-in-observation
  return predicted.set_bits();
}

DetectionOutcome MissingTagDetector::detect(const net::Topology& topology,
                                            const ccm::CcmConfig& ccm_template,
                                            const DetectionConfig& config,
                                            sim::EnergyMeter& energy,
                                            obs::TraceSink& sink) const {
  const obs::ProfileScope profile("trp.detect");
  NETTAG_EXPECTS(config.executions >= 1, "need at least one execution");
  const FrameSize f = effective_frame_size(config);

  DetectionOutcome outcome;
  const ccm::HashedSlotSelector everyone(1.0);  // TRP: p = 1 (SV-C)

  for (int e = 0; e < config.executions; ++e) {
    const Seed seed = fmix64(config.base_seed + static_cast<Seed>(e));
    ccm::CcmConfig session_config = ccm_template;
    session_config.frame_size = f;
    session_config.request_seed = seed;

    const ccm::SessionResult session =
        ccm::run_session(topology, session_config, everyone, energy, sink);
    outcome.clock.merge(session.clock);
    ++outcome.executions_run;

    const std::vector<SlotIndex> silent =
        silent_expected_slots(session.bitmap, seed);
    sink.event("detect_execution",
               {{"execution", e},
                {"f", f},
                {"silent_slots", static_cast<int>(silent.size())},
                {"alarm", !silent.empty()}});
    if (!silent.empty()) {
      outcome.alarm = true;
      outcome.silent_slots.insert(outcome.silent_slots.end(), silent.begin(),
                                  silent.end());
      Bitmap silent_mask(f);
      for (const SlotIndex s : silent) silent_mask.set(s);
      for (const TagId id : inventory_) {
        if (silent_mask.test(slot_pick(id, seed, f)))
          outcome.missing_candidates.push_back(id);
      }
      if (config.stop_on_alarm) break;
    }
  }
  sink.event(
      "detect_end",
      {{"alarm", outcome.alarm},
       {"executions", outcome.executions_run},
       {"candidates", static_cast<int>(outcome.missing_candidates.size())},
       {"silent_slots", static_cast<int>(outcome.silent_slots.size())}});
  return outcome;
}

}  // namespace nettag::protocols
