#include "protocols/missing/trp.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace nettag::protocols {

double trp_detection_probability(int n, int missing, FrameSize f) {
  NETTAG_EXPECTS(n >= 0 && missing >= 0 && missing <= n,
                 "need 0 <= missing <= n");
  NETTAG_EXPECTS(f > 0, "frame size must be positive");
  if (missing == 0) return 0.0;
  const int present = n - missing;
  const double q =
      std::exp(static_cast<double>(present) *
               std::log1p(-1.0 / static_cast<double>(f)));
  return 1.0 - std::pow(1.0 - q, static_cast<double>(missing));
}

FrameSize trp_required_frame_size(int n, int m, double delta) {
  NETTAG_EXPECTS(n >= 1, "population must be positive");
  NETTAG_EXPECTS(m >= 0 && m < n, "tolerance must satisfy 0 <= m < n");
  NETTAG_EXPECTS(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  const int threshold = m + 1;  // Eq. 14 requires detection for i > m
  // Need q >= 1 - (1-delta)^(1/threshold); invert q = (1-1/f)^(n-threshold).
  const double q_req =
      1.0 - std::exp(std::log(1.0 - delta) / static_cast<double>(threshold));
  const int present = n - threshold;
  if (present == 0) return 1;  // everything may be missing: any frame works
  const double log_keep = std::log(q_req) / static_cast<double>(present);
  // log(1 - 1/f) = log_keep  =>  f = 1 / (1 - e^{log_keep}).
  const double f = 1.0 / -std::expm1(log_keep);
  auto sized = static_cast<FrameSize>(std::ceil(f - 1e-9));
  // Guard the ceil against approximation slack: grow until the exact
  // probability clears delta (at most a few steps).
  while (trp_detection_probability(n, threshold, sized) < delta) ++sized;
  NETTAG_ENSURE(trp_detection_probability(n, threshold, sized) >= delta,
                "sized frame misses the Eq. 14 detection requirement");
  NETTAG_ENSURE(sized <= 1 ||
                    trp_detection_probability(n, threshold, sized - 1) <
                        delta + 1e-6,
                "sized frame is not minimal for the detection requirement");
  return sized;
}

}  // namespace nettag::protocols
