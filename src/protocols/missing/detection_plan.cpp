#include "protocols/missing/detection_plan.hpp"

#include <cmath>

#include "common/error.hpp"
#include "protocols/missing/trp.hpp"

namespace nettag::protocols {

std::vector<DetectionPlan> enumerate_detection_plans(const SystemConfig& sys,
                                                     int n, int m,
                                                     double delta,
                                                     int max_executions) {
  sys.validate();
  NETTAG_EXPECTS(max_executions >= 1, "need at least one execution");
  NETTAG_EXPECTS(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");

  const auto k = static_cast<SlotCount>(sys.estimated_tiers());
  const auto lc = static_cast<SlotCount>(sys.checking_frame_length());

  std::vector<DetectionPlan> plans;
  plans.reserve(static_cast<std::size_t>(max_executions));
  for (int executions = 1; executions <= max_executions; ++executions) {
    DetectionPlan plan;
    plan.executions = executions;
    // Independent executions: overall miss = product of per-execution
    // misses, so each must reach delta_e = 1 - (1-delta)^(1/E).
    plan.per_execution_delta =
        1.0 - std::pow(1.0 - delta, 1.0 / static_cast<double>(executions));
    plan.frame_size = trp_required_frame_size(n, m, plan.per_execution_delta);

    const auto f = static_cast<SlotCount>(plan.frame_size);
    plan.slots_per_execution = k * (f + (f + 95) / 96 + lc + 1);

    plan.expected_slots_null =
        static_cast<double>(executions) *
        static_cast<double>(plan.slots_per_execution);
    // Event (exactly m+1 missing, the spec's worst case): execution e runs
    // iff the first e-1 all missed, so E[count] = sum (1-delta_e)^e.
    double expected_runs = 0.0;
    for (int e = 0; e < executions; ++e)
      // Fixed execution order: geometric series summed serially.
      expected_runs +=  // nettag-lint: allow(float-for-accum)
          std::pow(1.0 - plan.per_execution_delta, e);
    plan.expected_slots_event =
        expected_runs * static_cast<double>(plan.slots_per_execution);
    plans.push_back(plan);
  }
  return plans;
}

DetectionPlan best_detection_plan(const SystemConfig& sys, int n, int m,
                                  double delta, int max_executions,
                                  double p_event) {
  NETTAG_EXPECTS(p_event >= 0.0 && p_event <= 1.0,
                 "event probability must be in [0,1]");
  const auto plans =
      enumerate_detection_plans(sys, n, m, delta, max_executions);
  const DetectionPlan* best = &plans.front();
  for (const auto& plan : plans) {
    if (plan.expected_slots(p_event) < best->expected_slots(p_event))
      best = &plan;
  }
  return *best;
}

}  // namespace nettag::protocols
