// Iterative missing-tag identification over CCM.
//
// TRP answers "is anything missing?"; its follow-up problem (the paper's
// reference [9]) is naming WHICH tags are gone.  CCM makes this simple and
// exact: in every execution, an inventory tag whose predicted slot stays
// idle is *certainly* missing (Theorem 1 — present tags always light their
// slot).  A missing tag hides only while some present tag shares its slot,
// which a fresh seed re-randomises: per execution it is isolated — and thus
// identified — with probability q = (1 - 1/f)^{n_present}.  Executions
// repeat until the probability that any hidden missing tag survived the run
// of empty executions drops below 1 - completeness.
#pragma once

#include <vector>

#include "ccm/options.hpp"
#include "net/topology.hpp"
#include "protocols/missing/missing_protocol.hpp"
#include "sim/clock.hpp"
#include "sim/energy.hpp"

namespace nettag::protocols {

/// Tuning of the identification loop.
struct IdentificationConfig {
  /// Frame size; 0 sizes the frame so q ~= 0.5 at the expected present
  /// population (f ~= 1.44 n), making each execution identify about half
  /// of the still-hidden missing tags.
  FrameSize frame_size = 0;

  /// Target probability that every missing tag has been named on exit.
  double completeness = 0.99;

  /// Hard cap on executions.
  int max_executions = 64;

  Seed base_seed = 0x1de;
};

/// Result of an identification run.
struct IdentificationOutcome {
  /// Tags proven missing (each observed with an idle predicted slot).
  std::vector<TagId> missing;

  int executions = 0;
  bool confident = false;  ///< stopping rule met (vs. execution cap hit)
  sim::SlotClock clock;
};

/// Repeats TRP executions over the present-tag `topology` until the
/// stopping rule of `config` is met, accumulating certainly-missing IDs.
[[nodiscard]] IdentificationOutcome identify_missing_tags(
    const MissingTagDetector& detector, const net::Topology& topology,
    const ccm::CcmConfig& ccm_template, const IdentificationConfig& config,
    sim::EnergyMeter& energy);

}  // namespace nettag::protocols
