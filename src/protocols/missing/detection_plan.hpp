// Detection planning: one big frame or several small ones?
//
// Eq. 14's requirement can be met by a single execution at frame size
// f(delta) or by E executions at f(delta_e), delta_e = 1 - (1-delta)^(1/E).
// The frame shrinks only logarithmically as E grows, so under the null
// hypothesis ("nothing is missing") one big execution is cheapest.  But a
// detection run may stop at the first alarm: when tags ARE missing, small
// executions alarm after ~1/delta_e of them and skip the rest.  Which plan
// wins therefore depends on how likely a missing event is — the energy/time
// tradeoff Luo et al. (the paper's [11]) study for the single-hop setting,
// transplanted to CCM.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace nettag::protocols {

/// One candidate plan: E executions at the per-execution frame size that
/// makes the whole run meet (m, delta).
struct DetectionPlan {
  int executions = 1;
  FrameSize frame_size = 0;
  double per_execution_delta = 0.0;

  /// Slots for one execution (K rounds of f + indicator + L_c + request).
  SlotCount slots_per_execution = 0;

  /// Expected total slots when nothing is missing (all E executions run).
  double expected_slots_null = 0.0;

  /// Expected total slots when m+1 tags are missing (stop at first alarm).
  double expected_slots_event = 0.0;

  /// Expected cost under P(missing event) = p:
  /// (1-p) * null + p * event.
  [[nodiscard]] double expected_slots(double p_event) const {
    return (1.0 - p_event) * expected_slots_null +
           p_event * expected_slots_event;
  }
};

/// Enumerates plans for E = 1..max_executions over the deployment `sys`
/// (its geometry fixes K and L_c) and inventory size `n`.
[[nodiscard]] std::vector<DetectionPlan> enumerate_detection_plans(
    const SystemConfig& sys, int n, int m, double delta, int max_executions);

/// The plan with the lowest expected cost at the given event probability.
[[nodiscard]] DetectionPlan best_detection_plan(const SystemConfig& sys,
                                                int n, int m, double delta,
                                                int max_executions,
                                                double p_event);

}  // namespace nettag::protocols
