#include "protocols/missing/identification.hpp"

#include <cmath>
#include <unordered_set>

#include "ccm/session.hpp"
#include "ccm/slot_selector.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace nettag::protocols {

IdentificationOutcome identify_missing_tags(
    const MissingTagDetector& detector, const net::Topology& topology,
    const ccm::CcmConfig& ccm_template, const IdentificationConfig& config,
    sim::EnergyMeter& energy) {
  NETTAG_EXPECTS(config.completeness > 0.0 && config.completeness < 1.0,
                 "completeness must be in (0,1)");
  NETTAG_EXPECTS(config.max_executions >= 1, "need at least one execution");

  const auto inventory_size =
      static_cast<double>(detector.inventory().size());
  const int present = topology.reachable_count();
  const FrameSize f =
      config.frame_size > 0
          ? config.frame_size
          : std::max<FrameSize>(
                64, static_cast<FrameSize>(std::ceil(
                        1.44 * static_cast<double>(present))));

  // Per-execution isolation probability of a hidden missing tag.
  const double q = std::exp(static_cast<double>(present) *
                            std::log1p(-1.0 / static_cast<double>(f)));
  NETTAG_ASSERT(q > 0.0 && q < 1.0, "degenerate isolation probability");
  (void)inventory_size;

  IdentificationOutcome outcome;
  std::unordered_set<TagId> found;
  const ccm::HashedSlotSelector everyone(1.0);

  // Stop once the chance that some hidden tag survived `streak` consecutive
  // fruitless executions falls below 1 - completeness.
  double survive_streak = 1.0;
  for (int e = 0; e < config.max_executions; ++e) {
    const Seed seed = fmix64(config.base_seed + static_cast<Seed>(e));
    ccm::CcmConfig session_config = ccm_template;
    session_config.frame_size = f;
    session_config.request_seed = seed;
    const ccm::SessionResult session =
        ccm::run_session(topology, session_config, everyone, energy);
    outcome.clock.merge(session.clock);
    ++outcome.executions;

    Bitmap predicted(f);
    for (const TagId id : detector.inventory())
      predicted.set(slot_pick(id, seed, f));
    predicted.subtract(session.bitmap);  // silent => every occupant missing

    bool new_find = false;
    if (predicted.any()) {
      for (const TagId id : detector.inventory()) {
        if (predicted.test(slot_pick(id, seed, f)) &&
            found.insert(id).second) {
          outcome.missing.push_back(id);
          new_find = true;
        }
      }
    }
    survive_streak = new_find ? (1.0 - q) : survive_streak * (1.0 - q);
    if (survive_streak <= 1.0 - config.completeness) {
      outcome.confident = true;
      break;
    }
  }
  return outcome;
}

}  // namespace nettag::protocols
