// TRP-based missing-tag detection over CCM (SV-B).
//
// One CCM session (K rounds) corresponds to one TRP execution in the
// traditional system: the reader broadcasts (f, eta), every present tag sets
// its hashed slot, and Theorem 1 guarantees the reader's final bitmap equals
// the traditional status bitmap.  The reader compares it against the bitmap
// predicted from the full inventory; any predicted-busy slot observed idle
// raises the alarm and incriminates the tags hashing there.
#pragma once

#include <vector>

#include "ccm/options.hpp"
#include "common/bitmap.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "sim/energy.hpp"

namespace nettag::protocols {

/// Tuning of the detection protocol.
struct DetectionConfig {
  double delta = 0.95;   ///< required per-execution detection probability
  int tolerance_m = 50;  ///< Eq. 14's m: alarms required when > m missing

  /// Frame size; 0 derives it from (inventory size, m, delta).
  FrameSize frame_size = 0;

  /// Number of executions (each with a fresh seed).  Multiple executions
  /// push the overall detection probability toward 1 (SV-A).
  int executions = 1;

  /// Stop at the first execution that raises an alarm.
  bool stop_on_alarm = true;

  Seed base_seed = 0xdead;
};

/// Outcome of one detection run.
struct DetectionOutcome {
  bool alarm = false;

  /// Slots predicted busy but observed idle, across all executions run.
  std::vector<SlotIndex> silent_slots;

  /// Inventory IDs that hash into a silent slot of the execution that
  /// observed it — each is certainly missing (a present tag would have made
  /// its slot busy; Theorem 1 rules out transport loss).
  std::vector<TagId> missing_candidates;

  int executions_run = 0;
  sim::SlotClock clock;
};

/// Detector owning the inventory (the a-priori ID list of SV-A).
class MissingTagDetector {
 public:
  explicit MissingTagDetector(std::vector<TagId> inventory);

  /// Frame size that will be used under `config` for this inventory.
  [[nodiscard]] FrameSize effective_frame_size(
      const DetectionConfig& config) const;

  /// Pure bitmap comparison for one execution: predicted-busy slots of
  /// `inventory` under `seed` that are idle in `observed`.  Exposed for unit
  /// tests and for readers that obtained the bitmap elsewhere.
  [[nodiscard]] std::vector<SlotIndex> silent_expected_slots(
      const Bitmap& observed, Seed seed) const;

  /// Runs up to `config.executions` CCM sessions over the present-tag
  /// `topology` and reports.  `energy` accumulates per-tag costs; `sink`
  /// receives one `detect_execution` event per execution, a final
  /// `detect_end`, and the forwarded per-session stream.
  [[nodiscard]] DetectionOutcome detect(
      const net::Topology& topology, const ccm::CcmConfig& ccm_template,
      const DetectionConfig& config, sim::EnergyMeter& energy,
      obs::TraceSink& sink = obs::null_sink()) const;

  [[nodiscard]] const std::vector<TagId>& inventory() const noexcept {
    return inventory_;
  }

 private:
  std::vector<TagId> inventory_;
};

}  // namespace nettag::protocols
