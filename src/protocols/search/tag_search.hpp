// Tag search over CCM — the third system-level function of SIII-B ("if each
// tag chooses multiple random slots in the time frame, we can perform tag
// search based on the bitmap", citing Zheng & Li and Chen et al.).
//
// The reader holds a wanted list W and asks which of those tags are present.
// Every tag sets k hashed slots of the frame (a Bloom-filter signature);
// the collected bitmap is the union of all present tags' signatures.  A
// wanted tag whose k slots are all busy is reported PRESENT; any idle slot
// proves ABSENCE.  Theorem 1 makes the bitmap exact, so:
//   * no false negatives: a present wanted tag is always reported present;
//   * false positives only from slot collisions, at the classic Bloom rate
//     (1 - q)^k with q the per-slot idle probability.
#pragma once

#include <vector>

#include "ccm/options.hpp"
#include "common/bitmap.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "sim/energy.hpp"

namespace nettag::protocols {

/// Tuning of the search protocol.
struct SearchConfig {
  /// Slots each tag sets (Bloom hash count).
  int slots_per_tag = 3;

  /// Frame size; 0 derives it from the expected population and the target
  /// false-positive rate.
  FrameSize frame_size = 0;

  /// Population estimate used when deriving the frame size (run GMLE first
  /// in a real deployment).
  double expected_population = 10'000.0;

  /// Target probability that an absent wanted tag is misreported present.
  double false_positive_target = 0.01;

  /// Number of independent frames (each halves^k the false-positive rate).
  int frames = 1;

  Seed base_seed = 0xbee;
};

/// Verdict for one wanted ID.
struct SearchVerdict {
  TagId id = 0;
  bool present = false;  ///< all signature slots busy in every frame
};

/// Outcome of one search run.
struct SearchOutcome {
  std::vector<SearchVerdict> verdicts;  ///< one per wanted ID, input order
  int present_count = 0;
  sim::SlotClock clock;
};

/// Per-frame false-positive probability for an absent tag:
/// (1 - (1 - k/f)^n)^k under k-slot signatures from n present tags.
[[nodiscard]] double search_false_positive_rate(double population,
                                                FrameSize f, int k);

/// Smallest frame size whose single-frame false-positive rate meets
/// `target` for `population` tags with `k` slots each.
[[nodiscard]] FrameSize search_required_frame_size(double population, int k,
                                                   double target);

/// Runs the search for `wanted` over the present-tag `topology` through CCM
/// sessions configured by `ccm_template` (frame size/seed overridden).
/// `sink` receives one `search_frame` event per frame, a final `search_end`,
/// and the forwarded per-session stream.
[[nodiscard]] SearchOutcome search_tags(
    const std::vector<TagId>& wanted, const net::Topology& topology,
    const ccm::CcmConfig& ccm_template, const SearchConfig& config,
    sim::EnergyMeter& energy, obs::TraceSink& sink = obs::null_sink());

/// Pure helper: verdicts from an already-collected bitmap (one frame).
[[nodiscard]] std::vector<SearchVerdict> verdicts_from_bitmap(
    const std::vector<TagId>& wanted, const Bitmap& bitmap, Seed seed,
    int slots_per_tag);

// ---------------------------------------------------------------------------
// Two-phase filtered search — the structure of the real tag-search protocols
// (Zheng & Li's CATS, Chen et al.; the paper's refs [14], [15]).  The naive
// variant above makes EVERY tag answer, so the response frame must scale
// with n.  Instead the reader first broadcasts a Bloom filter of the wanted
// set; only tags passing it (wanted ones plus a tunable sliver of false
// passers) respond, shrinking the response frame to ~|W| slots.
// ---------------------------------------------------------------------------

/// Tuning of the filtered search.
struct FilteredSearchConfig {
  /// Bloom filter of the wanted set broadcast by the reader.
  int filter_hashes = 4;
  /// Filter size in bits; 0 sizes it for `filter_pass_target` false passes.
  FrameSize filter_bits = 0;
  /// Target probability that a non-wanted tag passes the filter.
  double filter_pass_target = 0.02;

  /// Response-frame parameters (as in SearchConfig).
  int slots_per_tag = 3;
  FrameSize response_frame = 0;  ///< 0 = derive from expected responders
  double false_positive_target = 0.01;

  /// Population estimate (for sizing the expected responder count).
  double expected_population = 10'000.0;

  Seed base_seed = 0xf117e4;
};

/// Builds the k-hash Bloom filter of `ids` over `bits` bits.
[[nodiscard]] Bitmap build_bloom_filter(const std::vector<TagId>& ids,
                                        FrameSize bits, int hashes,
                                        Seed seed);

/// Membership test against a filter built with the same parameters.
[[nodiscard]] bool bloom_contains(const Bitmap& filter, TagId id, int hashes,
                                  Seed seed);

/// Smallest filter meeting `pass_target` for `wanted_count` entries.
[[nodiscard]] FrameSize bloom_required_bits(int wanted_count, int hashes,
                                            double pass_target);

/// Runs the two-phase search: filter broadcast (charged to every covered
/// tag), then one CCM session in which only passing tags respond.
[[nodiscard]] SearchOutcome search_tags_filtered(
    const std::vector<TagId>& wanted, const net::Topology& topology,
    const ccm::CcmConfig& ccm_template, const FilteredSearchConfig& config,
    sim::EnergyMeter& energy, obs::TraceSink& sink = obs::null_sink());

}  // namespace nettag::protocols
