#include "protocols/search/tag_search.hpp"

#include <cmath>

#include "ccm/session.hpp"
#include "ccm/slot_selector.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "obs/profiler.hpp"

namespace nettag::protocols {

double search_false_positive_rate(double population, FrameSize f, int k) {
  NETTAG_EXPECTS(population >= 0.0, "population must be non-negative");
  NETTAG_EXPECTS(f > 0, "frame size must be positive");
  NETTAG_EXPECTS(k >= 1, "need at least one slot per tag");
  // Busy probability of one slot under n tags setting k hashed slots each.
  const double busy =
      1.0 - std::exp(population * static_cast<double>(k) *
                     std::log1p(-1.0 / static_cast<double>(f)));
  return std::pow(busy, static_cast<double>(k));
}

FrameSize search_required_frame_size(double population, int k,
                                     double target) {
  NETTAG_EXPECTS(target > 0.0 && target < 1.0, "target must be in (0,1)");
  NETTAG_EXPECTS(k >= 1, "need at least one slot per tag");
  // busy <= target^(1/k)  =>  f >= -k n / ln(1 - target^(1/k)).
  const double busy_max = std::pow(target, 1.0 / static_cast<double>(k));
  const double f = -static_cast<double>(k) * population /
                   std::log1p(-busy_max);
  auto sized = static_cast<FrameSize>(std::ceil(std::max(f, 1.0)));
  while (search_false_positive_rate(population, sized, k) > target) ++sized;
  return sized;
}

std::vector<SearchVerdict> verdicts_from_bitmap(
    const std::vector<TagId>& wanted, const Bitmap& bitmap, Seed seed,
    int slots_per_tag) {
  NETTAG_EXPECTS(slots_per_tag >= 1, "need at least one slot per tag");
  std::vector<SearchVerdict> verdicts;
  verdicts.reserve(wanted.size());
  for (const TagId id : wanted) {
    SearchVerdict v;
    v.id = id;
    v.present = true;
    for (int i = 0; i < slots_per_tag; ++i) {
      if (!bitmap.test(slot_pick_k(id, seed, bitmap.size(), i))) {
        v.present = false;  // an idle signature slot proves absence
        break;
      }
    }
    verdicts.push_back(v);
  }
  return verdicts;
}

Bitmap build_bloom_filter(const std::vector<TagId>& ids, FrameSize bits,
                          int hashes, Seed seed) {
  NETTAG_EXPECTS(bits > 0, "filter size must be positive");
  NETTAG_EXPECTS(hashes >= 1, "need at least one hash");
  Bitmap filter(bits);
  for (const TagId id : ids) {
    for (int h = 0; h < hashes; ++h)
      filter.set(slot_pick_k(id, seed ^ 0xb100f, bits, h));
  }
  return filter;
}

bool bloom_contains(const Bitmap& filter, TagId id, int hashes, Seed seed) {
  NETTAG_EXPECTS(hashes >= 1, "need at least one hash");
  for (int h = 0; h < hashes; ++h) {
    if (!filter.test(slot_pick_k(id, seed ^ 0xb100f, filter.size(), h)))
      return false;
  }
  return true;
}

FrameSize bloom_required_bits(int wanted_count, int hashes,
                              double pass_target) {
  NETTAG_EXPECTS(wanted_count >= 1, "wanted set must be non-empty");
  NETTAG_EXPECTS(hashes >= 1, "need at least one hash");
  NETTAG_EXPECTS(pass_target > 0.0 && pass_target < 1.0,
                 "pass target must be in (0,1)");
  // Standard Bloom arithmetic: pass = (1 - e^{-k w / b})^k.
  const double busy_max =
      std::pow(pass_target, 1.0 / static_cast<double>(hashes));
  const double bits = -static_cast<double>(hashes) *
                      static_cast<double>(wanted_count) /
                      std::log1p(-busy_max);
  auto sized = static_cast<FrameSize>(std::ceil(std::max(bits, 8.0)));
  return sized;
}

namespace {

/// Round-1 policy of the filtered response frame: only filter-passers set
/// their signature slots.
class FilteredSelector final : public ccm::SlotSelector {
 public:
  FilteredSelector(const Bitmap* filter, int filter_hashes, Seed filter_seed,
                   int slots_per_tag)
      : filter_(filter),
        filter_hashes_(filter_hashes),
        filter_seed_(filter_seed),
        signature_(slots_per_tag) {}

  [[nodiscard]] std::vector<SlotIndex> pick(TagId id, Seed seed,
                                            FrameSize f) const override {
    if (!bloom_contains(*filter_, id, filter_hashes_, filter_seed_))
      return {};
    return signature_.pick(id, seed, f);
  }

 private:
  const Bitmap* filter_;
  int filter_hashes_;
  Seed filter_seed_;
  ccm::MultiSlotSelector signature_;
};

}  // namespace

SearchOutcome search_tags_filtered(const std::vector<TagId>& wanted,
                                   const net::Topology& topology,
                                   const ccm::CcmConfig& ccm_template,
                                   const FilteredSearchConfig& config,
                                   sim::EnergyMeter& energy,
                                   obs::TraceSink& sink) {
  const obs::ProfileScope profile("search.filtered");
  NETTAG_EXPECTS(!wanted.empty(), "wanted list must not be empty");
  const FrameSize filter_bits =
      config.filter_bits > 0
          ? config.filter_bits
          : bloom_required_bits(static_cast<int>(wanted.size()),
                                config.filter_hashes,
                                config.filter_pass_target);
  const Seed seed = fmix64(config.base_seed);
  const Bitmap filter =
      build_bloom_filter(wanted, filter_bits, config.filter_hashes, seed);

  SearchOutcome outcome;

  // Phase 1: the reader broadcasts the filter (96-bit segments); every
  // covered tag decodes it to learn whether it must answer.
  const SlotCount filter_segments =
      (static_cast<SlotCount>(filter_bits) + 95) / 96;
  outcome.clock.add_id_slots(filter_segments);
  for (TagIndex t = 0; t < topology.tag_count(); ++t) {
    if (topology.reader_covers(t))
      energy.add_received(t, filter_segments * 96);
  }

  // Phase 2: response frame sized for the expected responders.
  const double expected_responders =
      static_cast<double>(wanted.size()) +
      config.expected_population * config.filter_pass_target;
  const FrameSize f =
      config.response_frame > 0
          ? config.response_frame
          : search_required_frame_size(expected_responders,
                                       config.slots_per_tag,
                                       config.false_positive_target);

  sink.event("search_filter", {{"bits", filter_bits},
                               {"segments", filter_segments},
                               {"hashes", config.filter_hashes},
                               {"expected_responders", expected_responders},
                               {"f", f}});

  ccm::CcmConfig session_config = ccm_template;
  session_config.frame_size = f;
  session_config.request_seed = fmix64(seed ^ 0x2);
  const FilteredSelector selector(&filter, config.filter_hashes, seed,
                                  config.slots_per_tag);
  const ccm::SessionResult session =
      ccm::run_session(topology, session_config, selector, energy, sink);
  outcome.clock.merge(session.clock);

  outcome.verdicts = verdicts_from_bitmap(
      wanted, session.bitmap, session_config.request_seed,
      config.slots_per_tag);
  for (const auto& v : outcome.verdicts)
    outcome.present_count += v.present ? 1 : 0;
  sink.event("search_end", {{"present", outcome.present_count},
                            {"wanted", static_cast<int>(wanted.size())},
                            {"filtered", true}});
  return outcome;
}

SearchOutcome search_tags(const std::vector<TagId>& wanted,
                          const net::Topology& topology,
                          const ccm::CcmConfig& ccm_template,
                          const SearchConfig& config,
                          sim::EnergyMeter& energy, obs::TraceSink& sink) {
  const obs::ProfileScope profile("search.run");
  NETTAG_EXPECTS(!wanted.empty(), "wanted list must not be empty");
  NETTAG_EXPECTS(config.frames >= 1, "need at least one frame");
  const FrameSize f =
      config.frame_size > 0
          ? config.frame_size
          : search_required_frame_size(config.expected_population,
                                       config.slots_per_tag,
                                       config.false_positive_target);

  SearchOutcome outcome;
  outcome.verdicts.reserve(wanted.size());
  for (const TagId id : wanted) outcome.verdicts.push_back({id, true});

  const ccm::MultiSlotSelector selector(config.slots_per_tag);
  for (int frame = 0; frame < config.frames; ++frame) {
    const Seed seed = fmix64(config.base_seed + static_cast<Seed>(frame));
    ccm::CcmConfig session_config = ccm_template;
    session_config.frame_size = f;
    session_config.request_seed = seed;
    const ccm::SessionResult session =
        ccm::run_session(topology, session_config, selector, energy, sink);
    outcome.clock.merge(session.clock);

    const auto verdicts = verdicts_from_bitmap(wanted, session.bitmap, seed,
                                               config.slots_per_tag);
    // A tag is present only if every frame agrees (absence proof is final).
    for (std::size_t i = 0; i < verdicts.size(); ++i)
      outcome.verdicts[i].present &= verdicts[i].present;
    sink.event("search_frame", {{"frame", frame},
                                {"f", f},
                                {"bitmap_bits", session.bitmap.count()}});
  }
  for (const auto& v : outcome.verdicts)
    outcome.present_count += v.present ? 1 : 0;
  sink.event("search_end", {{"present", outcome.present_count},
                            {"wanted", static_cast<int>(wanted.size())},
                            {"filtered", false}});
  return outcome;
}

}  // namespace nettag::protocols
